//! Level-synchronous execution of Algorithm 3: ridges are processed in
//! waves ("rounds"), as in the CRCW PRAM formulation of Theorem 5.4.
//!
//! Each round processes every ready ridge; facets created in round `k` make
//! their new ridges ready for round `k + 1` (a ridge is ready once both
//! incident facets exist). The number of rounds is the synchronous span
//! proxy measured by experiment E2, and the per-round traces reproduce the
//! Figure 1 walkthrough (E4) exactly, including its three rounds.
//!
//! The runner is deterministic and single-threaded by design — it is a
//! *measurement* device; the scheduler-driven implementation is
//! [`super::parallel_hull`].

use super::trace::TraceEvent;
use crate::context::HullContext;
use crate::facet::{join_ridge, ridge_omitting, Facet, FacetVerts, RidgeKey};
use crate::output::HullOutput;
use crate::seq::merge_conflicts_into;
use crate::stats::HullStats;
use chull_concurrent::fast_hash::FastHashMap;
use chull_geometry::PointSet;

/// Result of a rounds run.
#[derive(Debug)]
pub struct RoundsRun {
    /// The final hull.
    pub output: HullOutput,
    /// Instrumentation; `stats.rounds` is the synchronous round count.
    pub stats: HullStats,
    /// Facets ever created, in creation order.
    pub created: Vec<FacetVerts>,
    /// Number of `ProcessRidge` calls executed in each round.
    pub ridges_per_round: Vec<usize>,
    /// Trace events tagged with their (1-based) round.
    pub trace: Vec<(usize, TraceEvent)>,
}

/// Run the rounds-synchronous Algorithm 3 starting from the seed simplex
/// (the first `d + 1` points, which must be affinely independent).
pub fn rounds_hull(pts: &PointSet, record_trace: bool) -> RoundsRun {
    rounds_hull_from(pts, pts.dim() + 1, record_trace)
}

/// Run the rounds-synchronous Algorithm 3 starting from the already-built
/// hull of the first `initial` points (computed sequentially), with the
/// remaining points pending — the setting of the paper's Figure 1, where
/// the hull `u-v-w-x-y-z-t` exists and `a, b, c` are inserted.
pub fn rounds_hull_from(pts: &PointSet, initial: usize, record_trace: bool) -> RoundsRun {
    let dim = pts.dim();
    let n = pts.len();
    assert!(initial > dim && initial <= n);

    // Hull of the first `initial` points, computed sequentially.
    let head = PointSet::from_flat(dim, pts.flat()[..initial * dim].to_vec());
    let head_run = crate::seq::incremental_hull_run(&head);
    let simplex: Vec<u32> = (0..=dim as u32).collect();
    let ctx = HullContext::new(pts, &simplex);

    let mut stats = HullStats {
        n,
        dim,
        ..Default::default()
    };
    let mut facets: Vec<Facet> = Vec::new();
    let mut alive: Vec<bool> = Vec::new();
    let mut created: Vec<FacetVerts> = Vec::new();
    let mut trace: Vec<(usize, TraceEvent)> = Vec::new();

    // Seed facets: the head hull's facets, with conflicts over the tail.
    let tail: Vec<u32> = (initial as u32..n as u32).collect();
    for verts in &head_run.output.facets {
        let (facet, counts) = ctx.make_facet(*verts, &tail, u32::MAX);
        stats.absorb_kernel(&counts);
        created.push(facet.verts);
        facets.push(facet);
        alive.push(true);
        stats.facets_created += 1;
    }

    // Initial frontier: every ridge of the seed hull (each shared by
    // exactly two facets).
    let mut incident: FastHashMap<RidgeKey, Vec<u32>> = FastHashMap::default();
    for (id, f) in facets.iter().enumerate() {
        for omit in 0..dim {
            incident
                .entry(ridge_omitting(&f.verts, dim, omit))
                .or_default()
                .push(id as u32);
        }
    }
    let mut frontier: Vec<(u32, RidgeKey, u32)> = incident
        .into_iter()
        .map(|(r, ids)| {
            assert_eq!(ids.len(), 2, "seed hull not closed at ridge {r:?}");
            (ids[0], r, ids[1])
        })
        .collect();
    frontier.sort_unstable_by_key(|&(_, r, _)| r); // determinism

    let mut pending: FastHashMap<RidgeKey, u32> = FastHashMap::default();
    let mut ridges_per_round = Vec::new();
    let mut round = 0usize;
    // Reused conflict-merge scratch (one allocation for the whole run).
    let mut candidates: Vec<u32> = Vec::new();

    while !frontier.is_empty() {
        round += 1;
        ridges_per_round.push(frontier.len());
        let mut next: Vec<(u32, RidgeKey, u32)> = Vec::new();
        for (mut t1, r, mut t2) in frontier {
            let (p1, p2) = (facets[t1 as usize].pivot(), facets[t2 as usize].pivot());
            if p1 == u32::MAX && p2 == u32::MAX {
                if record_trace {
                    trace.push((
                        round,
                        TraceEvent::finalize(
                            dim,
                            &facets[t1 as usize].verts,
                            &facets[t2 as usize].verts,
                            round as u64,
                        ),
                    ));
                }
                continue;
            }
            if p1 == p2 {
                alive[t1 as usize] = false;
                alive[t2 as usize] = false;
                stats.buried += 1;
                if record_trace {
                    trace.push((
                        round,
                        TraceEvent::bury(
                            dim,
                            &facets[t1 as usize].verts,
                            &facets[t2 as usize].verts,
                            p1,
                            round as u64,
                        ),
                    ));
                }
                continue;
            }
            if p2 < p1 {
                std::mem::swap(&mut t1, &mut t2);
            }
            let p = facets[t1 as usize].pivot();
            let verts = join_ridge(&r, dim, p);
            merge_conflicts_into(
                &facets[t1 as usize].conflicts,
                &facets[t2 as usize].conflicts,
                &mut candidates,
            );
            let (facet, counts) = ctx.make_facet(verts, &candidates, p);
            stats.absorb_kernel(&counts);
            alive[t1 as usize] = false;
            stats.replaced += 1;
            if record_trace {
                trace.push((
                    round,
                    TraceEvent::replace(dim, &facets[t1 as usize].verts, &verts, p, round as u64),
                ));
            }
            let t_id = facets.len() as u32;
            created.push(facet.verts);
            facets.push(facet);
            alive.push(true);
            stats.facets_created += 1;
            for omit in 0..dim {
                let r_new = ridge_omitting(&verts, dim, omit);
                if r_new == r {
                    next.push((t_id, r_new, t2));
                } else if let Some(t_other) = pending.remove(&r_new) {
                    next.push((t_id, r_new, t_other));
                } else {
                    pending.insert(r_new, t_id);
                }
            }
        }
        frontier = next;
        frontier.sort_unstable_by_key(|&(_, r, _)| r);
    }

    let hull_facets: Vec<FacetVerts> = facets
        .iter()
        .zip(&alive)
        .filter(|(f, &a)| {
            debug_assert!(!a || f.conflicts.is_empty(), "alive facet with conflicts");
            a
        })
        .map(|(f, _)| f.verts)
        .collect();
    stats.rounds = round as u64;
    if chull_obs::armed() {
        crate::telemetry::engine_metrics()
            .rounds_total
            .add(round as u64);
    }
    stats.hull_facets = hull_facets.len() as u64;
    RoundsRun {
        output: HullOutput {
            dim,
            facets: hull_facets,
        },
        stats,
        created,
        ridges_per_round,
        trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::prepare_points;
    use crate::seq::incremental_hull_run;
    use chull_geometry::generators;

    #[test]
    fn matches_sequential_output_2d_and_3d() {
        for seed in 0..3u64 {
            let pts = PointSet::from_points2(&generators::disk_2d(300, 1 << 20, seed));
            let pts = prepare_points(&pts, seed + 1);
            let seq = incremental_hull_run(&pts);
            let rr = rounds_hull(&pts, false);
            assert_eq!(seq.output.canonical(), rr.output.canonical());

            let pts = PointSet::from_points3(&generators::ball_3d(150, 1 << 20, seed));
            let pts = prepare_points(&pts, seed + 2);
            let seq = incremental_hull_run(&pts);
            let rr = rounds_hull(&pts, false);
            assert_eq!(seq.output.canonical(), rr.output.canonical());
        }
    }

    #[test]
    fn rounds_grow_logarithmically() {
        let mut prev_rounds = 0;
        for n in [256usize, 1024, 4096] {
            let pts = PointSet::from_points2(&generators::disk_2d(n, 1 << 20, 3));
            let pts = prepare_points(&pts, 4);
            let rr = rounds_hull(&pts, false);
            let hn: f64 = (1..=n).map(|i| 1.0 / i as f64).sum();
            assert!(
                (rr.stats.rounds as f64) < 30.0 * hn,
                "rounds {} too large for n = {n}",
                rr.stats.rounds
            );
            assert!(rr.stats.rounds as usize >= 2);
            // Rounds should not explode as n quadruples.
            if prev_rounds > 0 {
                assert!(rr.stats.rounds <= prev_rounds * 3);
            }
            prev_rounds = rr.stats.rounds;
        }
    }

    #[test]
    fn from_initial_hull_matches_full_run() {
        let pts = PointSet::from_points2(&generators::disk_2d(120, 1 << 16, 8));
        let pts = prepare_points(&pts, 9);
        let full = rounds_hull(&pts, false);
        let staged = rounds_hull_from(&pts, 40, false);
        assert_eq!(full.output.canonical(), staged.output.canonical());
    }

    #[test]
    fn same_facets_as_async_parallel() {
        let pts = PointSet::from_points2(&generators::disk_2d(250, 1 << 20, 12));
        let pts = prepare_points(&pts, 13);
        let rr = rounds_hull(&pts, false);
        let par = super::super::parallel_hull(&pts, super::super::ParOptions::default());
        let mut a = rr.created.clone();
        let mut b = par.created.clone();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        assert_eq!(rr.stats.visibility_tests, par.stats.visibility_tests);
    }

    #[test]
    fn per_round_counts_sum_sanity() {
        let pts = PointSet::from_points2(&generators::disk_2d(100, 1 << 16, 5));
        let pts = prepare_points(&pts, 6);
        let rr = rounds_hull(&pts, true);
        assert_eq!(rr.ridges_per_round.len(), rr.stats.rounds as usize);
        // Every trace round index is within bounds.
        assert!(rr
            .trace
            .iter()
            .all(|(r, _)| *r >= 1 && *r <= rr.stats.rounds as usize));
    }
}
