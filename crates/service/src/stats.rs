//! Service-level observability: lock-free per-shard counters, folded into
//! one JSON line for the wire `Stats` request and the CLI `--stats-json`.

use crate::snapshot::HullSnapshot;
use chull_geometry::KernelCounts;
use std::sync::atomic::{AtomicU64, Ordering};

/// Staged-kernel counters as five atomics, so concurrent readers can fold
/// their per-call [`KernelCounts`] accumulators in without coordination.
#[derive(Default)]
pub struct AtomicKernel {
    tests: AtomicU64,
    filter_hits: AtomicU64,
    i128_fallbacks: AtomicU64,
    bigint_fallbacks: AtomicU64,
    descent_steps: AtomicU64,
}

impl AtomicKernel {
    /// Fold a per-call tally in.
    pub fn fold(&self, c: &KernelCounts) {
        self.tests.fetch_add(c.tests, Ordering::Relaxed);
        self.filter_hits.fetch_add(c.filter_hits, Ordering::Relaxed);
        self.i128_fallbacks
            .fetch_add(c.i128_fallbacks, Ordering::Relaxed);
        self.bigint_fallbacks
            .fetch_add(c.bigint_fallbacks, Ordering::Relaxed);
        self.descent_steps
            .fetch_add(c.descent_steps, Ordering::Relaxed);
    }

    /// Current totals.
    pub fn load(&self) -> KernelCounts {
        KernelCounts {
            tests: self.tests.load(Ordering::Relaxed),
            filter_hits: self.filter_hits.load(Ordering::Relaxed),
            i128_fallbacks: self.i128_fallbacks.load(Ordering::Relaxed),
            bigint_fallbacks: self.bigint_fallbacks.load(Ordering::Relaxed),
            descent_steps: self.descent_steps.load(Ordering::Relaxed),
        }
    }
}

fn kernel_json(c: &KernelCounts) -> String {
    format!(
        "{{\"tests\":{},\"filter_hits\":{},\"i128_fallbacks\":{},\"bigint_fallbacks\":{},\
         \"descent_steps\":{}}}",
        c.tests, c.filter_hits, c.i128_fallbacks, c.bigint_fallbacks, c.descent_steps
    )
}

/// Per-shard request and pipeline counters. All monotone atomics; exact
/// at quiescence, momentarily racy gauges otherwise — fine for serving
/// dashboards.
#[derive(Default)]
pub struct ShardStats {
    /// Inserts accepted into the ingest queue.
    pub inserts_enqueued: AtomicU64,
    /// Inserts rejected with `Overloaded` (queue at capacity).
    pub overloaded: AtomicU64,
    /// `Contains` requests served.
    pub queries_contains: AtomicU64,
    /// `Visible` requests served.
    pub queries_visible: AtomicU64,
    /// `Extreme` requests served.
    pub queries_extreme: AtomicU64,
    /// `Snapshot` requests served.
    pub snapshots: AtomicU64,
    /// `Flush` barriers served.
    pub flushes: AtomicU64,
    /// Ingest batches applied by the shard worker.
    pub batches_applied: AtomicU64,
    /// Inserts applied through those batches.
    pub batched_inserts: AtomicU64,
    /// Largest single batch coalesced so far.
    pub max_batch: AtomicU64,
    /// Extra drain rounds: batches the worker pulled without re-parking
    /// because the queue was still non-empty after the previous batch
    /// (a deep backlog drains in one wakeup, up to a fairness bound).
    pub queue_drain_rounds: AtomicU64,
    /// Staged-kernel counters from the read path (history descents run by
    /// `Contains`/`Visible` against published snapshots).
    pub query_kernel: AtomicKernel,
    /// Worker deaths recovered by the shard supervisor.
    pub recoveries: AtomicU64,
    /// Duration of the most recent recovery (journal replay + republish),
    /// in microseconds.
    pub recovery_us_last: AtomicU64,
    /// Total time spent recovering, in microseconds (equals the shard's
    /// cumulative degraded-read window).
    pub recovery_us_total: AtomicU64,
    /// Shard recovery generation (mirrors the supervisor's counter; 0
    /// until the first worker death).
    pub generation: AtomicU64,
    /// Inserts durably journaled (gauge, updated per batch).
    pub journal_len: AtomicU64,
    /// WAL write/flush failures tolerated (the in-memory journal remains
    /// authoritative for in-process recovery).
    pub wal_errors: AtomicU64,
    /// Torn journal tails detected at replay sealing (typed
    /// `JournalError::TornTail`): the journal held fewer batch units than
    /// the shard had published. Should stay 0; non-zero means a recovery
    /// rebuilt from an incomplete journal.
    pub torn_tails: AtomicU64,
    /// Recoveries that took the bulk divide-and-conquer build path
    /// instead of incremental batch replay (DESIGN §S21).
    pub bulk_builds: AtomicU64,
    /// Points the bulk sweep pruned as strictly interior across those
    /// builds (never candidates, never touched the batch install).
    pub bulk_pruned: AtomicU64,
    /// Deletes and expires accepted into the ingest queue (wire
    /// `Mutate`, protocol v6).
    pub deletes_enqueued: AtomicU64,
    /// Deletes that found no live copy (acked, nothing journaled).
    pub delete_misses: AtomicU64,
    /// Tombstones journaled (explicit deletes, expires, and window
    /// expirations that killed a live copy).
    pub tombstones: AtomicU64,
    /// Rows tombstoned by the shard's retention window specifically.
    pub window_expirations: AtomicU64,
    /// Live rows in the shard's multiset (gauge, updated per batch).
    pub live_points: AtomicU64,
    /// Dead live-set entries awaiting the next compacting rebuild
    /// (gauge).
    pub lazy_tombstones: AtomicU64,
    /// Hull rebuilds from survivors (tombstone-forced, ratio-triggered,
    /// replayed, or follower checkpoints).
    pub rebuilds: AtomicU64,
    /// Rebuilds triggered purely by the journal-ratio auto-compaction
    /// policy.
    pub auto_compactions: AtomicU64,
    /// Duration of the most recent rebuild, in microseconds.
    pub rebuild_us_last: AtomicU64,
    /// Total time spent rebuilding, in microseconds.
    pub rebuild_us_total: AtomicU64,
}

impl ShardStats {
    /// Record one applied batch of `n` inserts.
    pub fn record_batch(&self, n: u64) {
        self.batches_applied.fetch_add(1, Ordering::Relaxed);
        self.batched_inserts.fetch_add(n, Ordering::Relaxed);
        self.max_batch.fetch_max(n, Ordering::Relaxed);
    }

    /// Record one completed recovery that took `us` microseconds.
    pub fn record_recovery(&self, us: u64, generation: u64) {
        self.recoveries.fetch_add(1, Ordering::Relaxed);
        self.recovery_us_last.store(us, Ordering::Relaxed);
        self.recovery_us_total.fetch_add(us, Ordering::Relaxed);
        self.generation.store(generation, Ordering::Relaxed);
    }

    /// One shard's counters as a JSON object, joined with the snapshot
    /// gauges (epoch, applied points, hull size) and the live queue depth.
    pub fn json(&self, shard: usize, snap: &HullSnapshot, queue_depth: usize) -> String {
        let ingest = snap.ingest_kernel();
        format!(
            "{{\"shard\":{shard},\"epoch\":{},\"applied\":{},\"ready\":{},\
             \"points\":{},\"hull_facets\":{},\"dep_depth\":{},\"queue_depth\":{queue_depth},\
             \"inserts_enqueued\":{},\"overloaded\":{},\
             \"queries_contains\":{},\"queries_visible\":{},\"queries_extreme\":{},\
             \"snapshots\":{},\"flushes\":{},\
             \"batches_applied\":{},\"batched_inserts\":{},\"max_batch\":{},\
             \"queue_drain_rounds\":{},\
             \"recoveries\":{},\"recovery_us_last\":{},\"recovery_us_total\":{},\
             \"generation\":{},\"journal_len\":{},\"wal_errors\":{},\
             \"torn_tails\":{},\"bulk_builds\":{},\"bulk_pruned\":{},\
             \"deletes_enqueued\":{},\"delete_misses\":{},\"tombstones\":{},\
             \"window_expirations\":{},\"live_points\":{},\"lazy_tombstones\":{},\
             \"rebuilds\":{},\"auto_compactions\":{},\
             \"rebuild_us_last\":{},\"rebuild_us_total\":{},\
             \"ingest_kernel\":{},\"query_kernel\":{}}}",
            snap.epoch,
            snap.applied,
            snap.ready(),
            snap.num_points(),
            snap.num_facets(),
            snap.dep_depth(),
            self.inserts_enqueued.load(Ordering::Relaxed),
            self.overloaded.load(Ordering::Relaxed),
            self.queries_contains.load(Ordering::Relaxed),
            self.queries_visible.load(Ordering::Relaxed),
            self.queries_extreme.load(Ordering::Relaxed),
            self.snapshots.load(Ordering::Relaxed),
            self.flushes.load(Ordering::Relaxed),
            self.batches_applied.load(Ordering::Relaxed),
            self.batched_inserts.load(Ordering::Relaxed),
            self.max_batch.load(Ordering::Relaxed),
            self.queue_drain_rounds.load(Ordering::Relaxed),
            self.recoveries.load(Ordering::Relaxed),
            self.recovery_us_last.load(Ordering::Relaxed),
            self.recovery_us_total.load(Ordering::Relaxed),
            self.generation.load(Ordering::Relaxed),
            self.journal_len.load(Ordering::Relaxed),
            self.wal_errors.load(Ordering::Relaxed),
            self.torn_tails.load(Ordering::Relaxed),
            self.bulk_builds.load(Ordering::Relaxed),
            self.bulk_pruned.load(Ordering::Relaxed),
            self.deletes_enqueued.load(Ordering::Relaxed),
            self.delete_misses.load(Ordering::Relaxed),
            self.tombstones.load(Ordering::Relaxed),
            self.window_expirations.load(Ordering::Relaxed),
            self.live_points.load(Ordering::Relaxed),
            self.lazy_tombstones.load(Ordering::Relaxed),
            self.rebuilds.load(Ordering::Relaxed),
            self.auto_compactions.load(Ordering::Relaxed),
            self.rebuild_us_last.load(Ordering::Relaxed),
            self.rebuild_us_total.load(Ordering::Relaxed),
            kernel_json(&ingest),
            kernel_json(&self.query_kernel.load()),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fold_and_load_roundtrip() {
        let k = AtomicKernel::default();
        k.fold(&KernelCounts {
            tests: 5,
            filter_hits: 3,
            i128_fallbacks: 1,
            bigint_fallbacks: 1,
            descent_steps: 9,
        });
        k.fold(&KernelCounts {
            tests: 2,
            filter_hits: 2,
            i128_fallbacks: 0,
            bigint_fallbacks: 0,
            descent_steps: 4,
        });
        let c = k.load();
        assert_eq!(c.tests, 7);
        assert_eq!(c.filter_hits, 5);
        assert_eq!(c.descent_steps, 13);
        assert_eq!(
            c.tests,
            c.filter_hits + c.i128_fallbacks + c.bigint_fallbacks
        );
    }

    #[test]
    fn json_has_every_counter() {
        let s = ShardStats::default();
        s.record_batch(4);
        s.record_batch(9);
        s.record_recovery(250, 1);
        let j = s.json(2, &HullSnapshot::empty(3), 5);
        for key in [
            "\"shard\":2",
            "\"queue_depth\":5",
            "\"batches_applied\":2",
            "\"batched_inserts\":13",
            "\"max_batch\":9",
            "\"queue_drain_rounds\":0",
            "\"recoveries\":1",
            "\"recovery_us_last\":250",
            "\"generation\":1",
            "\"wal_errors\":0",
            "\"torn_tails\":0",
            "\"bulk_builds\":0",
            "\"bulk_pruned\":0",
            "\"deletes_enqueued\":0",
            "\"delete_misses\":0",
            "\"tombstones\":0",
            "\"window_expirations\":0",
            "\"live_points\":0",
            "\"lazy_tombstones\":0",
            "\"rebuilds\":0",
            "\"auto_compactions\":0",
            "\"rebuild_us_last\":0",
            "\"rebuild_us_total\":0",
            "\"ready\":false",
            "\"dep_depth\":0",
            "\"ingest_kernel\":{\"tests\":0",
            "\"query_kernel\":{\"tests\":0",
        ] {
            assert!(j.contains(key), "missing {key} in {j}");
        }
        assert!(!j.contains('\n'));
    }
}
