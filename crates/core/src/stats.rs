//! Instrumentation records shared by the hull algorithms.

use chull_geometry::KernelCounts;

/// Counters and depth measurements from one hull construction.
///
/// The paper's claims map onto these fields:
/// * Theorem 1.1 / 4.2 — `dep_depth` is `D(G(S))`, logarithmic whp;
/// * Theorem 5.3 — `recursion_depth` of `ProcessRidge`, bounded by
///   `dep_depth` levels;
/// * Theorems 5.4/5.5 — `visibility_tests` (the work) is identical between
///   Algorithm 2 and Algorithm 3, and `rounds` is the synchronous span proxy.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HullStats {
    /// Number of input points.
    pub n: usize,
    /// Dimension `d`.
    pub dim: usize,
    /// Exact plane-side tests performed (the algorithm's work).
    pub visibility_tests: u64,
    /// Facets ever created (including later replaced/buried ones).
    pub facets_created: u64,
    /// Facets on the final hull.
    pub hull_facets: u64,
    /// Depth of the configuration dependence graph `D(G(S))`
    /// (computed by the instrumented runs; 0 if not recorded).
    pub dep_depth: u64,
    /// Maximum `ProcessRidge` recursion depth (parallel runs only).
    pub recursion_depth: u64,
    /// Number of level-synchronous rounds (rounds runner only).
    pub rounds: u64,
    /// `ProcessRidge` invocations that buried a ridge (parallel only).
    pub buried: u64,
    /// `ProcessRidge` invocations that replaced a facet (parallel only).
    pub replaced: u64,
    /// Depth of the *naive* dependence graph, where a new facet depends on
    /// **every** facet its pivot removes (the pre-paper, synchronous
    /// scheduling discipline). The gap between this and `dep_depth` is what
    /// the paper's support sets buy (ablation E12a). Sequential runs only.
    pub naive_dep_depth: u64,
    /// Visibility tests certified by the staged kernel's f64 filter alone.
    /// `visibility_tests == filter_hits + i128_fallbacks + bigint_fallbacks`.
    pub filter_hits: u64,
    /// Visibility tests that fell through to the checked `i128` dot product.
    pub i128_fallbacks: u64,
    /// Visibility tests that needed arbitrary-precision evaluation.
    pub bigint_fallbacks: u64,
    /// History-graph nodes visited by point-location descents on the
    /// query path (0 for construction-only runs; inserts locate through
    /// the history too but report via `visibility_tests`).
    pub descent_steps: u64,
}

impl HullStats {
    /// Fold one facet's staged-kernel counters into the run totals.
    #[inline]
    pub fn absorb_kernel(&mut self, counts: &KernelCounts) {
        self.visibility_tests += counts.tests;
        self.filter_hits += counts.filter_hits;
        self.i128_fallbacks += counts.i128_fallbacks;
        self.bigint_fallbacks += counts.bigint_fallbacks;
        self.descent_steps += counts.descent_steps;
    }

    /// The harmonic number `H_n` for normalizing depths (Theorem 4.2).
    pub fn harmonic(&self) -> f64 {
        (1..=self.n).map(|i| 1.0 / i as f64).sum()
    }

    /// `dep_depth / H_n` — bounded by a constant whp per Theorem 4.2.
    pub fn depth_over_harmonic(&self) -> f64 {
        self.dep_depth as f64 / self.harmonic()
    }

    /// One JSON object with every counter, on a single line — the
    /// machine-readable form behind the CLI's `--stats-json` flag (no
    /// external JSON dependency in this environment, so hand-rolled).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"n\":{},\"dim\":{},\"visibility_tests\":{},\"facets_created\":{},\
             \"hull_facets\":{},\"dep_depth\":{},\"recursion_depth\":{},\"rounds\":{},\
             \"buried\":{},\"replaced\":{},\"naive_dep_depth\":{},\"filter_hits\":{},\
             \"i128_fallbacks\":{},\"bigint_fallbacks\":{},\"descent_steps\":{}}}",
            self.n,
            self.dim,
            self.visibility_tests,
            self.facets_created,
            self.hull_facets,
            self.dep_depth,
            self.recursion_depth,
            self.rounds,
            self.buried,
            self.replaced,
            self.naive_dep_depth,
            self.filter_hits,
            self.i128_fallbacks,
            self.bigint_fallbacks,
            self.descent_steps
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_one_line_with_every_field() {
        let s = HullStats {
            n: 5,
            dim: 2,
            visibility_tests: 7,
            ..Default::default()
        };
        let j = s.to_json();
        assert!(!j.contains('\n'));
        assert!(j.starts_with('{') && j.ends_with('}'));
        for key in [
            "\"n\":5",
            "\"dim\":2",
            "\"visibility_tests\":7",
            "\"filter_hits\":0",
            "\"bigint_fallbacks\":0",
            "\"descent_steps\":0",
        ] {
            assert!(j.contains(key), "missing {key} in {j}");
        }
    }
}
