//! Cross-algorithm agreement: every hull algorithm in the suite must
//! produce the same hull on the same input, across distributions, seeds,
//! and dimensions — including property-based random inputs.

use convex_hull_suite::core::baseline::{brute, giftwrap, monotone_chain, quickhull2d};
use convex_hull_suite::core::par::rounds::rounds_hull;
use convex_hull_suite::core::par::{parallel_hull, MapKind, ParOptions};
use convex_hull_suite::core::seq::incremental_hull_run;
use convex_hull_suite::core::{prepare_points, verify};
use convex_hull_suite::geometry::rng::ChaCha8Rng;
use convex_hull_suite::geometry::{generators, Point2i, PointSet};

fn assert_all_2d_agree(points: &[Point2i], seed: u64) {
    let mc = monotone_chain::hull_output(points);
    let qh = quickhull2d::hull_output(points);
    assert_eq!(
        mc.canonical(),
        qh.canonical(),
        "monotone chain vs quickhull"
    );
    let mut gw = giftwrap::hull_indices(points);
    gw.sort_unstable();
    let mut mcv: Vec<u32> = mc.vertices().into_iter().collect();
    mcv.sort_unstable();
    assert_eq!(gw, mcv, "gift wrapping vertex set");

    let pts = prepare_points(&PointSet::from_points2(points), seed);
    let seq = incremental_hull_run(&pts);
    let par = parallel_hull(&pts, ParOptions::default());
    let rr = rounds_hull(&pts, false);
    assert_eq!(seq.output.canonical(), par.output.canonical(), "seq vs par");
    assert_eq!(
        seq.output.canonical(),
        rr.output.canonical(),
        "seq vs rounds"
    );
    verify::verify_hull(&pts, &seq.output).expect("verify incremental hull");

    // Vertex *sets* are permutation-invariant: compare coordinates.
    let hull_coords = |out: &convex_hull_suite::core::HullOutput,
                       ps: &PointSet|
     -> std::collections::BTreeSet<(i64, i64)> {
        out.vertices()
            .into_iter()
            .map(|v| {
                let c = ps.pt(v);
                (c[0], c[1])
            })
            .collect()
    };
    let ps_orig = PointSet::from_points2(points);
    assert_eq!(
        hull_coords(&mc, &ps_orig),
        hull_coords(&seq.output, &pts),
        "incremental vs baseline vertex coordinates"
    );
}

#[test]
fn all_2d_algorithms_agree_across_distributions() {
    for seed in 0..3u64 {
        assert_all_2d_agree(&generators::disk_2d(500, 1 << 20, seed), seed);
        assert_all_2d_agree(&generators::near_circle_2d(200, 1 << 20, seed), seed + 1);
        assert_all_2d_agree(&generators::parabola_2d(150, seed), seed + 2);
        let g = generators::gaussian_d(2, 300, 10_000.0, seed);
        let pts: Vec<Point2i> = g.iter().map(|c| Point2i::new(c[0], c[1])).collect();
        assert_all_2d_agree(&pts, seed + 3);
    }
}

#[test]
fn small_3d_matches_brute_force() {
    for seed in 0..5u64 {
        let pts3 = generators::ball_3d(13, 1 << 14, seed);
        let ps = prepare_points(&PointSet::from_points3(&pts3), seed);
        let seq = incremental_hull_run(&ps);
        let par = parallel_hull(&ps, ParOptions::default());
        let oracle = brute::hull_output(&ps);
        assert_eq!(
            seq.output.canonical(),
            oracle.canonical(),
            "seq vs brute (seed {seed})"
        );
        assert_eq!(
            par.output.canonical(),
            oracle.canonical(),
            "par vs brute (seed {seed})"
        );
    }
}

#[test]
fn small_4d_5d_match_brute_force() {
    for dim in [4usize, 5] {
        for seed in 0..2u64 {
            let ps = generators::ball_d(dim, 12, 1 << 12, seed);
            let ps = prepare_points(&ps, seed + 7);
            let seq = incremental_hull_run(&ps);
            let par = parallel_hull(&ps, ParOptions::default());
            let oracle = brute::hull_output(&ps);
            assert_eq!(
                seq.output.canonical(),
                oracle.canonical(),
                "dim {dim} seed {seed}"
            );
            assert_eq!(
                par.output.canonical(),
                oracle.canonical(),
                "dim {dim} seed {seed}"
            );
            verify::verify_hull(&ps, &seq.output).unwrap();
        }
    }
}

#[test]
fn map_engines_are_interchangeable() {
    let pts = prepare_points(
        &PointSet::from_points3(&generators::ball_3d(400, 1 << 20, 3)),
        4,
    );
    let locked = parallel_hull(
        &pts,
        ParOptions {
            map: MapKind::Locked,
            record_trace: false,
        },
    );
    let cas = parallel_hull(
        &pts,
        ParOptions {
            map: MapKind::Cas {
                capacity_factor: 16,
            },
            record_trace: false,
        },
    );
    let tas = parallel_hull(
        &pts,
        ParOptions {
            map: MapKind::Tas {
                capacity_factor: 16,
            },
            record_trace: false,
        },
    );
    assert_eq!(locked.output.canonical(), cas.output.canonical());
    assert_eq!(locked.output.canonical(), tas.output.canonical());
    assert_eq!(locked.stats.visibility_tests, cas.stats.visibility_tests);
    assert_eq!(locked.stats.visibility_tests, tas.stats.visibility_tests);
}

/// Any set of >= 3 non-collinear random points: all 2D algorithms agree
/// and the hull verifies. Deterministic pseudo-random cases stand in for
/// the original proptest strategies.
#[test]
fn prop_random_2d_points_agree() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x2d2d);
    let mut checked = 0;
    while checked < 24 {
        // Wide coordinate range keeps exact hull-boundary collinearity
        // (where strict and non-strict hulls legitimately differ) rare.
        let len = rng.gen_range(8usize..80);
        let mut pts: Vec<Point2i> = (0..len)
            .map(|_| {
                Point2i::new(
                    rng.gen_range(-100_000_000i64..100_000_000),
                    rng.gen_range(-100_000_000i64..100_000_000),
                )
            })
            .collect();
        let seed = rng.gen_range(0u64..1000);
        // Dedup; skip fully collinear samples (the incremental algorithms
        // require an initial simplex).
        pts.sort_unstable();
        pts.dedup();
        if pts.len() < 4 {
            continue;
        }
        let rows: Vec<Vec<i64>> = pts.iter().map(|p| vec![p.x, p.y]).collect();
        let rank = convex_hull_suite::geometry::exact::affine_rank(
            &rows.iter().map(|r| r.as_slice()).collect::<Vec<_>>(),
        );
        if rank != 3 {
            continue;
        }
        assert_all_2d_agree(&pts, seed);
        checked += 1;
    }
}

/// The parallel hull equals the sequential hull and performs exactly
/// the same visibility tests, on random 3D inputs.
#[test]
fn prop_par_equals_seq_3d() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x3d3d);
    let mut checked = 0;
    while checked < 24 {
        let len = rng.gen_range(6usize..40);
        let mut pts: Vec<_> = (0..len)
            .map(|_| {
                convex_hull_suite::geometry::Point3i::new(
                    rng.gen_range(-500i64..500),
                    rng.gen_range(-500i64..500),
                    rng.gen_range(-500i64..500),
                )
            })
            .collect();
        let seed = rng.gen_range(0u64..1000);
        pts.sort_unstable();
        pts.dedup();
        if pts.len() < 5 {
            continue;
        }
        let ps = PointSet::from_points3(&pts);
        let rows: Vec<&[i64]> = (0..ps.len()).map(|i| ps.point(i)).collect();
        if convex_hull_suite::geometry::exact::affine_rank(&rows) != 4 {
            continue;
        }
        let prepared = prepare_points(&ps, seed);
        let seq = incremental_hull_run(&prepared);
        let par = parallel_hull(&prepared, ParOptions::default());
        assert_eq!(seq.output.canonical(), par.output.canonical());
        assert_eq!(seq.stats.visibility_tests, par.stats.visibility_tests);
        let mut a = seq.created.clone();
        let mut b = par.created.clone();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        checked += 1;
    }
}
