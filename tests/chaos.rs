//! Chaos harness: seeded kill/corrupt schedules against a **live** hull
//! server with concurrent clients streaming 2D and 3D workloads.
//!
//! The failure model under test (DESIGN §S15):
//!
//! * a shard worker that dies mid-batch is detected by its supervisor,
//!   which replays the shard's append-only insert journal and
//!   republishes — so after the dust settles the served hull must be
//!   **bit-identical** (as a set of facet coordinate tuples) to the
//!   offline sequential Algorithm 2 on the same point multiset
//!   (order-independence, Theorem 4.2, is what makes replay a correct
//!   recovery strategy);
//! * every acked insert survives: acks happen at enqueue, batches are
//!   journaled (and WAL-synced) *before* any point is applied, so a
//!   crash between journal and publish loses nothing;
//! * with an on-disk WAL the same guarantee extends across whole-process
//!   restarts, including a torn record at the WAL tail;
//! * the canned `FaultPlan::chaos` schedule (worker panics, truncated
//!   frame writes, spurious backpressure, accept latency) may duplicate
//!   an insert via client resend-after-lost-response — duplicates are
//!   harmless to the hull, so that test asserts set equality and exact
//!   facet agreement rather than multiset equality.
//!
//! The failpoint registry is process-global, so every test here takes a
//! shared mutex before arming it.

use convex_hull_suite::concurrent::failpoint::{self, sites, FaultPlan, SiteSpec};
use convex_hull_suite::core::seq::incremental_hull_run;
use convex_hull_suite::geometry::{generators, PointSet};
use convex_hull_suite::service::{
    serve, HullClient, MutationBatch, ServeOptions, ServiceConfig, SnapshotReply,
};
use std::collections::BTreeSet;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Duration;

/// Serialize tests that arm the process-global failpoint registry.
fn chaos_lock() -> MutexGuard<'static, ()> {
    static GUARD: OnceLock<Mutex<()>> = OnceLock::new();
    match GUARD.get_or_init(|| Mutex::new(())).lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

fn opts(dim: usize, wal_dir: Option<PathBuf>) -> ServeOptions {
    ServeOptions {
        config: ServiceConfig {
            dim,
            shards: 1,
            queue_capacity: 256,
            max_batch: 32,
            workers: 2,
            wal_dir,
            bulk_threshold: 0,
            ..Default::default()
        },
        ..Default::default()
    }
}

fn opts_backend(dim: usize, threaded: bool) -> ServeOptions {
    ServeOptions {
        threaded,
        ..opts(dim, None)
    }
}

/// A hull as an order-free set of facets, each facet the sorted list of
/// its vertices' coordinate rows (vertex ids differ between runs with
/// different insertion orders; coordinates cannot).
fn canonical(facets: impl Iterator<Item = Vec<Vec<i64>>>) -> BTreeSet<Vec<Vec<i64>>> {
    facets
        .map(|mut f| {
            f.sort();
            f
        })
        .collect()
}

fn canonical_offline(pts: &PointSet) -> BTreeSet<Vec<Vec<i64>>> {
    let run = incremental_hull_run(pts);
    let dim = pts.dim();
    canonical(run.output.facets.iter().map(|f| {
        f[..dim]
            .iter()
            .map(|&v| pts.point(v as usize).to_vec())
            .collect()
    }))
}

fn canonical_served(snap: &SnapshotReply) -> BTreeSet<Vec<Vec<i64>>> {
    canonical(
        snap.facets
            .iter()
            .map(|f| f.iter().map(|&v| snap.points[v as usize].clone()).collect()),
    )
}

fn connect_retry(addr: SocketAddr) -> HullClient {
    for _ in 0..200 {
        if let Ok(c) = HullClient::builder(addr.to_string()).connect() {
            return c;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("could not connect to {addr}");
}

/// Stream `rows` into shard 0 from `clients` concurrent connections,
/// tolerating torn connections the single built-in redial cannot save
/// (a fresh chaos fault can hit the redial too) by reconnecting with a
/// fresh client and resending. Every row is acked at least once when
/// this returns.
fn insert_all(addr: SocketAddr, rows: &[Vec<i64>], clients: usize) {
    std::thread::scope(|s| {
        for c in 0..clients {
            s.spawn(move || {
                let mut client = connect_retry(addr);
                for row in rows.iter().skip(c).step_by(clients) {
                    let mut attempts = 0;
                    loop {
                        match client.mutate(0, MutationBatch::new().insert(row.clone())) {
                            Ok(_) => break,
                            Err(e) => {
                                attempts += 1;
                                assert!(attempts < 100, "insert kept failing under chaos: {e}");
                                client = connect_retry(addr);
                            }
                        }
                    }
                }
            });
        }
    });
}

/// Pull one numeric counter out of a stats JSON line.
fn grab(json: &str, key: &str) -> u64 {
    let pat = format!("\"{key}\":");
    let at = json
        .find(&pat)
        .unwrap_or_else(|| panic!("stats json missing {key}: {json}"))
        + pat.len();
    json[at..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .expect("stats counter is a number")
}

/// One seeded kill schedule: deterministic worker panics while applying
/// and before publishing, then assert full recovery.
fn kill_schedule_run(seed: u64, dim: usize, n: usize) {
    let pts = generators::cube_d(dim, n, 1_000_000, seed % 97 + 3);
    let rows: Vec<Vec<i64>> = (0..n).map(|i| pts.point(i).to_vec()).collect();
    let mut server = serve(opts(dim, None)).unwrap();
    let addr = server.local_addr();
    failpoint::arm(
        FaultPlan::new(seed)
            .site(
                sites::SHARD_APPLY,
                SiteSpec {
                    panic_every: 47,
                    max_fires: 3,
                    ..SiteSpec::default()
                },
            )
            .site(
                sites::SHARD_BEFORE_PUBLISH,
                SiteSpec {
                    panic_ppm: 40_000,
                    max_fires: 2,
                    ..SiteSpec::default()
                },
            ),
    );
    insert_all(addr, &rows, 3);
    // Acks happen at enqueue, so the clients can finish before the worker
    // has applied enough inserts to trip the deterministic schedule —
    // drain everything through the armed failpoints before disarming.
    let mut client = connect_retry(addr);
    client.flush(0).unwrap();
    failpoint::disarm();
    let snap = client.snapshot(0).unwrap();
    assert_eq!(
        snap.points.len(),
        n,
        "seed {seed:#x} dim {dim}: every acked insert must survive worker crashes"
    );
    assert_eq!(
        canonical_served(&snap),
        canonical_offline(&pts),
        "seed {seed:#x} dim {dim}: recovered hull differs from offline Algorithm 2"
    );
    let stats = client.stats(Some(0)).unwrap();
    assert!(
        grab(&stats, "recoveries") >= 1,
        "seed {seed:#x} dim {dim}: schedule never killed the worker: {stats}"
    );
    assert_eq!(grab(&stats, "batched_inserts"), n as u64, "{stats}");
    server.shutdown();
}

#[test]
fn seeded_kill_schedules_recover_bit_identical_2d() {
    let _g = chaos_lock();
    for seed in [0xC4A0_0001u64, 0xC4A0_0002, 0xC4A0_0003] {
        kill_schedule_run(seed, 2, 360);
    }
}

#[test]
fn seeded_kill_schedules_recover_bit_identical_3d() {
    let _g = chaos_lock();
    for seed in [0xC4A0_1001u64, 0xC4A0_1002, 0xC4A0_1003] {
        kill_schedule_run(seed, 3, 240);
    }
}

/// The canned `--chaos-seed` schedule: worker panics *and* truncated
/// frame writes *and* spurious queue-full *and* accept latency, all at
/// once. Truncated responses can make a client resend an already-queued
/// insert, so the points may contain duplicates — assert set equality
/// plus exact facet agreement instead of multiset equality.
///
/// Runs on the default epoll event-loop front end *and* the original
/// thread-per-connection loop: both must serve the exact offline hull
/// under the same seeded schedule (the threaded server is the oracle
/// for the reactor rewrite; DESIGN §S19).
#[test]
fn canned_chaos_schedule_serves_exact_hull() {
    let _g = chaos_lock();
    canned_chaos_run(false);
}

#[test]
fn canned_chaos_schedule_serves_exact_hull_threaded() {
    let _g = chaos_lock();
    canned_chaos_run(true);
}

fn canned_chaos_run(threaded: bool) {
    let n = 300;
    let pts = generators::ball_d(2, n, 1_000_000, 23);
    let rows: Vec<Vec<i64>> = (0..n).map(|i| pts.point(i).to_vec()).collect();
    let mut server = serve(opts_backend(2, threaded)).unwrap();
    let addr = server.local_addr();
    failpoint::arm(FaultPlan::chaos(0xDEAD_5EED));
    insert_all(addr, &rows, 4);
    failpoint::disarm();
    let mut client = connect_retry(addr);
    client.flush(0).unwrap();
    let snap = client.snapshot(0).unwrap();
    assert!(
        snap.points.len() >= n,
        "acked inserts lost: {} served < {n} sent",
        snap.points.len()
    );
    let sent: BTreeSet<&Vec<i64>> = rows.iter().collect();
    let served: BTreeSet<&Vec<i64>> = snap.points.iter().collect();
    assert_eq!(
        sent, served,
        "served point set must equal the sent set (duplicates aside)"
    );
    assert_eq!(
        canonical_served(&snap),
        canonical_offline(&pts),
        "hull under canned chaos differs from offline Algorithm 2"
    );
    server.shutdown();
}

/// Crash-safe replay across a whole-process restart: run a server with
/// an on-disk WAL (killing its worker once mid-run), shut it down,
/// damage the WAL tail with a torn record, and restart — the new server
/// must recover every point, match the offline hull, and keep accepting
/// inserts.
#[test]
fn wal_recovery_across_restart_with_torn_tail() {
    let _g = chaos_lock();
    let dir = std::env::temp_dir().join(format!(
        "chull-chaos-wal-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let n = 140;
    let pts = generators::cube_d(2, n, 1_000_000, 41);
    let rows: Vec<Vec<i64>> = (0..n).map(|i| pts.point(i).to_vec()).collect();
    {
        let mut server = serve(opts(2, Some(dir.clone()))).unwrap();
        let addr = server.local_addr();
        failpoint::arm(FaultPlan::new(0xAA11).site(
            sites::SHARD_APPLY,
            SiteSpec {
                panic_every: 53,
                max_fires: 1,
                ..SiteSpec::default()
            },
        ));
        insert_all(addr, &rows, 2);
        // Drain through the armed failpoint so the single kill (and its
        // journal replay) deterministically happens before shutdown.
        let mut client = connect_retry(addr);
        client.flush(0).unwrap();
        failpoint::disarm();
        assert_eq!(client.snapshot(0).unwrap().points.len(), n);
        server.shutdown();
    }
    // A record header claiming 42 payload bytes, followed by only two:
    // the torn tail a mid-append crash leaves behind.
    {
        use std::io::Write;
        let wal = dir.join("shard-0.wal");
        let mut f = std::fs::OpenOptions::new().append(true).open(&wal).unwrap();
        f.write_all(&[42, 0, 0, 0, 0xDE, 0xAD]).unwrap();
    }
    {
        let mut server = serve(opts(2, Some(dir.clone()))).unwrap();
        let addr = server.local_addr();
        let mut client = connect_retry(addr);
        let snap = client.snapshot(0).unwrap();
        assert_eq!(
            snap.points.len(),
            n,
            "restart must replay every synced insert despite the torn tail"
        );
        assert_eq!(
            canonical_served(&snap),
            canonical_offline(&pts),
            "restarted hull differs from offline Algorithm 2"
        );
        // The recovered shard keeps working: append one more point.
        client
            .mutate(0, MutationBatch::new().insert([2_000_000, 2_000_000]))
            .unwrap();
        client.flush(0).unwrap();
        assert_eq!(client.snapshot(0).unwrap().points.len(), n + 1);
        server.shutdown();
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A panic on the accept path (failpoint `server.accept`) must be
/// **contained**: `shutdown()`/`Drop` return normally instead of
/// propagating the accept thread's panic into the caller, and the
/// panic message is surfaced through `ServerHandle::accept_fault`.
/// Exercises both front ends — the threaded accept loop and the epoll
/// reactor thread.
#[test]
fn accept_thread_panic_is_contained_and_surfaced() {
    let _g = chaos_lock();
    for threaded in [true, false] {
        let mut server = serve(opts_backend(2, threaded)).unwrap();
        let addr = server.local_addr();
        assert!(server.accept_fault().is_none());
        failpoint::arm(FaultPlan::new(0xACC0).site(
            sites::SERVER_ACCEPT,
            SiteSpec {
                panic_every: 1,
                max_fires: 1,
                ..SiteSpec::default()
            },
        ));
        // The first accept trips the panic; the connect itself still
        // completes at the OS backlog level.
        let _ = std::net::TcpStream::connect(addr);
        if threaded {
            // The accept thread's fault is only recorded when it is
            // joined; give the panic time to fire before shutting down.
            std::thread::sleep(Duration::from_millis(300));
        } else {
            // The reactor records its own fault on the way out.
            let t0 = std::time::Instant::now();
            while server.accept_fault().is_none() && t0.elapsed() < Duration::from_secs(5) {
                std::thread::sleep(Duration::from_millis(10));
                let _ = std::net::TcpStream::connect(addr);
            }
        }
        failpoint::disarm();
        let contained = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            server.shutdown();
        }));
        assert!(
            contained.is_ok(),
            "shutdown propagated the accept-thread panic (threaded={threaded})"
        );
        assert!(
            server.accept_fault().is_some(),
            "accept-path panic was swallowed, not surfaced (threaded={threaded})"
        );
    }
}
