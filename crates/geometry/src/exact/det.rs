//! Exact integer determinant signs via fraction-free (Bareiss) elimination.
//!
//! The fast path runs Bareiss over checked `i128` arithmetic; any overflow
//! falls back to the same elimination over [`BigInt`]. Division in Bareiss is
//! always exact (each entry of the k-th elimination step is a (k+1)x(k+1)
//! minor of the original matrix), which the `BigInt` path asserts.

use super::bigint::{BigInt, Sign};

/// Exact sign of the determinant of a square integer matrix.
///
/// Never overflows: falls back to arbitrary precision when `i128`
/// intermediates would not fit.
pub fn det_sign_i64(rows: &[Vec<i64>]) -> Sign {
    let n = rows.len();
    for r in rows {
        assert_eq!(r.len(), n, "determinant of non-square matrix");
    }
    if n == 0 {
        return Sign::Positive;
    }
    let m: Vec<Vec<i128>> = rows
        .iter()
        .map(|r| r.iter().map(|&v| v as i128).collect())
        .collect();
    match bareiss_sign_i128(m) {
        Some(s) => s,
        None => {
            let m: Vec<Vec<BigInt>> = rows
                .iter()
                .map(|r| r.iter().map(|&v| BigInt::from(v)).collect())
                .collect();
            bareiss_sign_bigint(m)
        }
    }
}

/// Exact signed determinant of a square integer matrix as a [`BigInt`].
pub fn det_i64(rows: &[Vec<i64>]) -> BigInt {
    let n = rows.len();
    for r in rows {
        assert_eq!(r.len(), n, "determinant of non-square matrix");
    }
    let m: Vec<Vec<BigInt>> = rows
        .iter()
        .map(|r| r.iter().map(|&v| BigInt::from(v)).collect())
        .collect();
    bareiss_det_bigint(m)
}

/// Exact sign of the determinant of a square matrix with `i128` entries
/// (e.g. lifted coordinates `x^2 + y^2` in incircle tests).
///
/// Tries checked `i128` Bareiss first and falls back to arbitrary precision.
pub fn det_sign_i128(rows: &[Vec<i128>]) -> Sign {
    let n = rows.len();
    for r in rows {
        assert_eq!(r.len(), n, "determinant of non-square matrix");
    }
    if n == 0 {
        return Sign::Positive;
    }
    match bareiss_sign_i128(rows.to_vec()) {
        Some(s) => s,
        None => {
            let m: Vec<Vec<BigInt>> = rows
                .iter()
                .map(|r| r.iter().map(|&v| BigInt::from(v)).collect())
                .collect();
            bareiss_sign_bigint(m)
        }
    }
}

/// Exact determinant **value** of a square `i128` matrix via checked
/// Bareiss elimination; `None` if any intermediate would overflow `i128`.
///
/// This is the workhorse behind cached-hyperplane construction: facet
/// plane coefficients are d×d minors of the orientation matrix, and the
/// caller wants the value (not just the sign) on the fast path.
pub fn det_i128_checked(rows: &[Vec<i128>]) -> Option<i128> {
    let n = rows.len();
    for r in rows {
        assert_eq!(r.len(), n, "determinant of non-square matrix");
    }
    if n == 0 {
        return Some(1);
    }
    let mut m = rows.to_vec();
    let mut negate = false;
    let mut prev_pivot: i128 = 1;
    for k in 0..n {
        let pivot_row = match (k..n).find(|&i| m[i][k] != 0) {
            Some(r) => r,
            None => return Some(0),
        };
        if pivot_row != k {
            m.swap(k, pivot_row);
            negate = !negate;
        }
        let pivot = m[k][k];
        for i in (k + 1)..n {
            for j in (k + 1)..n {
                let a = pivot.checked_mul(m[i][j])?;
                let b = m[i][k].checked_mul(m[k][j])?;
                let num = a.checked_sub(b)?;
                debug_assert_eq!(num % prev_pivot, 0);
                m[i][j] = num / prev_pivot;
            }
            m[i][k] = 0;
        }
        prev_pivot = pivot;
    }
    let det = m[n - 1][n - 1];
    Some(if negate { det.checked_neg()? } else { det })
}

/// Exact determinant of a square `i128` matrix as a [`BigInt`]
/// (arbitrary-precision path for minors that overflow `i128`).
pub fn det_i128_bigint(rows: &[Vec<i128>]) -> BigInt {
    let n = rows.len();
    for r in rows {
        assert_eq!(r.len(), n, "determinant of non-square matrix");
    }
    let m: Vec<Vec<BigInt>> = rows
        .iter()
        .map(|r| r.iter().map(|&v| BigInt::from(v)).collect())
        .collect();
    bareiss_det_bigint(m)
}

/// Bareiss elimination over `i128` with overflow checking.
/// Returns `None` if any intermediate would overflow.
fn bareiss_sign_i128(mut m: Vec<Vec<i128>>) -> Option<Sign> {
    let n = m.len();
    let mut sign_flips = 0u32;
    let mut prev_pivot: i128 = 1;
    for k in 0..n {
        // Column pivoting: find a nonzero pivot at or below row k.
        let pivot_row = (k..n).find(|&i| m[i][k] != 0);
        let pivot_row = match pivot_row {
            Some(r) => r,
            None => return Some(Sign::Zero),
        };
        if pivot_row != k {
            m.swap(k, pivot_row);
            sign_flips += 1;
        }
        let pivot = m[k][k];
        for i in (k + 1)..n {
            for j in (k + 1)..n {
                let a = pivot.checked_mul(m[i][j])?;
                let b = m[i][k].checked_mul(m[k][j])?;
                let num = a.checked_sub(b)?;
                debug_assert_eq!(num % prev_pivot, 0);
                m[i][j] = num / prev_pivot;
            }
            m[i][k] = 0;
        }
        prev_pivot = pivot;
    }
    let det_entry = m[n - 1][n - 1];
    let mut s = Sign::from_i32(match det_entry {
        0 => 0,
        v if v > 0 => 1,
        _ => -1,
    });
    if sign_flips % 2 == 1 {
        s = s.negate();
    }
    Some(s)
}

/// Bareiss elimination over [`BigInt`]; returns the sign of the determinant.
fn bareiss_sign_bigint(m: Vec<Vec<BigInt>>) -> Sign {
    bareiss_det_bigint(m).sign()
}

/// Bareiss elimination over [`BigInt`]; returns the exact determinant.
fn bareiss_det_bigint(mut m: Vec<Vec<BigInt>>) -> BigInt {
    let n = m.len();
    if n == 0 {
        return BigInt::one();
    }
    let mut negate = false;
    let mut prev_pivot = BigInt::one();
    for k in 0..n {
        let pivot_row = (k..n).find(|&i| !m[i][k].is_zero());
        let pivot_row = match pivot_row {
            Some(r) => r,
            None => return BigInt::zero(),
        };
        if pivot_row != k {
            m.swap(k, pivot_row);
            negate = !negate;
        }
        for i in (k + 1)..n {
            for j in (k + 1)..n {
                let num = m[k][k].mul(&m[i][j]).sub(&m[i][k].mul(&m[k][j]));
                m[i][j] = num.div_exact(&prev_pivot);
            }
            m[i][k] = BigInt::zero();
        }
        prev_pivot = m[k][k].clone();
    }
    let mut det = m[n - 1][n - 1].clone();
    if negate {
        det.negate();
    }
    det
}

/// Exact rank of an integer matrix (not necessarily square), via
/// fraction-free elimination over [`BigInt`] with full pivoting.
pub fn rank_i64(rows: &[Vec<i64>]) -> usize {
    if rows.is_empty() {
        return 0;
    }
    let ncols = rows[0].len();
    for r in rows {
        assert_eq!(r.len(), ncols, "ragged matrix");
    }
    let mut m: Vec<Vec<BigInt>> = rows
        .iter()
        .map(|r| r.iter().map(|&v| BigInt::from(v)).collect())
        .collect();
    let nrows = m.len();
    let mut rank = 0;
    let mut prev_pivot = BigInt::one();
    for col in 0..ncols {
        // Find a pivot at or below `rank` in this column.
        let pivot_row = (rank..nrows).find(|&i| !m[i][col].is_zero());
        let pivot_row = match pivot_row {
            Some(r) => r,
            None => continue,
        };
        m.swap(rank, pivot_row);
        for i in (rank + 1)..nrows {
            for j in (col + 1)..ncols {
                let num = m[rank][col].mul(&m[i][j]).sub(&m[i][col].mul(&m[rank][j]));
                m[i][j] = num.div_exact(&prev_pivot);
            }
            m[i][col] = BigInt::zero();
        }
        prev_pivot = m[rank][col].clone();
        rank += 1;
        if rank == nrows {
            break;
        }
    }
    rank
}

/// Exact affine rank of a set of points (dimension of their affine hull
/// plus one equals the number of affinely independent points): returns the
/// rank of the difference matrix plus 1, i.e. the size of a maximal
/// affinely independent subset.
pub fn affine_rank(points: &[&[i64]]) -> usize {
    if points.is_empty() {
        return 0;
    }
    let base = points[0];
    let diffs: Vec<Vec<i64>> = points[1..]
        .iter()
        .map(|p| p.iter().zip(base).map(|(&a, &b)| a - b).collect())
        .collect();
    rank_i64(&diffs) + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sign_of(rows: &[&[i64]]) -> i32 {
        let v: Vec<Vec<i64>> = rows.iter().map(|r| r.to_vec()).collect();
        det_sign_i64(&v).as_i32()
    }

    #[test]
    fn small_matrices() {
        assert_eq!(sign_of(&[&[5]]), 1);
        assert_eq!(sign_of(&[&[-5]]), -1);
        assert_eq!(sign_of(&[&[0]]), 0);
        assert_eq!(sign_of(&[&[1, 2], &[3, 4]]), -1); // det -2
        assert_eq!(sign_of(&[&[2, 0], &[0, 3]]), 1);
        assert_eq!(sign_of(&[&[1, 2], &[2, 4]]), 0);
    }

    #[test]
    fn identity_and_permutations() {
        for n in 1..=6 {
            let mut m = vec![vec![0i64; n]; n];
            for (i, row) in m.iter_mut().enumerate() {
                row[i] = 1;
            }
            assert_eq!(det_sign_i64(&m).as_i32(), 1, "identity {n}x{n}");
            if n >= 2 {
                m.swap(0, 1);
                assert_eq!(det_sign_i64(&m).as_i32(), -1, "swapped identity {n}x{n}");
            }
        }
    }

    #[test]
    fn pivoting_with_zero_leading_entry() {
        // First column starts with 0: forces a row swap.
        assert_eq!(sign_of(&[&[0, 1], &[1, 0]]), -1);
        assert_eq!(sign_of(&[&[0, 0, 1], &[0, 1, 0], &[1, 0, 0]]), -1);
        assert_eq!(sign_of(&[&[0, 2, 3], &[4, 5, 6], &[7, 8, 9]]), 1); // det 6? verify below
    }

    #[test]
    fn exact_value_matches_cofactor_for_random_3x3() {
        // Deterministic pseudo-random 3x3s, cross-check against cofactor i128.
        let mut state = 0x243F6A8885A308D3u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as i64 % 1000) - 500
        };
        for _ in 0..200 {
            let m: Vec<Vec<i64>> = (0..3).map(|_| (0..3).map(|_| next()).collect()).collect();
            let a = &m;
            let cofactor: i128 = (a[0][0] as i128)
                * ((a[1][1] as i128) * (a[2][2] as i128) - (a[1][2] as i128) * (a[2][1] as i128))
                - (a[0][1] as i128)
                    * ((a[1][0] as i128) * (a[2][2] as i128)
                        - (a[1][2] as i128) * (a[2][0] as i128))
                + (a[0][2] as i128)
                    * ((a[1][0] as i128) * (a[2][1] as i128)
                        - (a[1][1] as i128) * (a[2][0] as i128));
            assert_eq!(det_sign_i64(&m).as_i32(), cofactor.signum() as i32);
            let exact = det_i64(&m);
            assert_eq!(exact, BigInt::from(cofactor));
        }
    }

    #[test]
    fn bigint_fallback_on_huge_entries() {
        // Entries near i64::MAX force the i128 path to overflow in 3x3+.
        let b = i64::MAX / 2;
        let m = vec![
            vec![b, -b, b, 1],
            vec![-b, b, 1, b],
            vec![b, 1, -b, b],
            vec![1, b, b, -b],
        ];
        // Compare fallback against a plain BigInt cofactor expansion.
        let s = det_sign_i64(&m);
        let exact = det_i64(&m);
        assert_eq!(s, exact.sign());
        assert_ne!(s, Sign::Zero);
    }

    #[test]
    fn rank_deficient_large() {
        // 5x5 with a duplicated row: determinant must be exactly zero.
        let base: Vec<i64> = vec![3, -7, 11, 13, -17];
        let mut m: Vec<Vec<i64>> = (0..5)
            .map(|i| {
                base.iter()
                    .map(|&v| v * (i as i64 + 1) + i as i64)
                    .collect()
            })
            .collect();
        m[4] = m[2].clone();
        assert_eq!(det_sign_i64(&m), Sign::Zero);
    }

    #[test]
    fn rank_basics() {
        assert_eq!(rank_i64(&[]), 0);
        assert_eq!(rank_i64(&[vec![0, 0], vec![0, 0]]), 0);
        assert_eq!(rank_i64(&[vec![1, 2], vec![2, 4]]), 1);
        assert_eq!(rank_i64(&[vec![1, 2], vec![3, 4]]), 2);
        // Wide and tall matrices.
        assert_eq!(rank_i64(&[vec![1, 2, 3, 4]]), 1);
        assert_eq!(rank_i64(&[vec![1], vec![2], vec![3]]), 1);
        // Rank 2 with a zero leading column (forces column skipping).
        assert_eq!(rank_i64(&[vec![0, 1, 2], vec![0, 2, 4], vec![0, 0, 5]]), 2);
    }

    #[test]
    fn affine_rank_of_simplices() {
        // A triangle in 3D has affine rank 3; adding a coplanar point keeps
        // it; an off-plane point raises it to 4.
        let a = [0i64, 0, 0];
        let b = [1i64, 0, 0];
        let c = [0i64, 1, 0];
        let coplanar = [5i64, 7, 0];
        let off = [0i64, 0, 3];
        assert_eq!(affine_rank(&[&a]), 1);
        assert_eq!(affine_rank(&[&a, &b]), 2);
        assert_eq!(affine_rank(&[&a, &b, &b]), 2);
        assert_eq!(affine_rank(&[&a, &b, &c]), 3);
        assert_eq!(affine_rank(&[&a, &b, &c, &coplanar]), 3);
        assert_eq!(affine_rank(&[&a, &b, &c, &off]), 4);
    }

    #[test]
    fn upper_triangular() {
        let m = vec![
            vec![2, 5, 7, 11],
            vec![0, -3, 1, 2],
            vec![0, 0, 4, 9],
            vec![0, 0, 0, -1],
        ];
        // det = 2 * -3 * 4 * -1 = 24 > 0
        assert_eq!(det_sign_i64(&m), Sign::Positive);
        assert_eq!(det_i64(&m), BigInt::from(24i64));
    }
}
