//! A toy configuration space with 1-support: adjacent pairs in sorted order.
//!
//! Objects are the integers `0..n` (the object's index is its value).
//! For an inserted subset `Y`, the active configurations are the adjacent
//! pairs of the sorted order of `Y` plus two boundary configurations
//! (`Left` of the minimum, `Right` of the maximum). A pair `(a, b)`
//! conflicts with every value strictly between `a` and `b`.
//!
//! Inserting values in random order makes the dependence graph exactly the
//! recursion tree of a treap, so its depth is `O(log n)` whp — this space is
//! the simplest nontrivial witness of Theorem 4.2 and the primary test load
//! for the generic dependence-graph builder.

use crate::space::ConfigurationSpace;

/// Configurations of the sorted-pairs space.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum PairConfig {
    /// `a` and `b` are adjacent in sorted order (`a < b`).
    Pair(usize, usize),
    /// `a` is the minimum of the inserted set.
    Left(usize),
    /// `a` is the maximum of the inserted set.
    Right(usize),
}

/// The sorted-pairs configuration space over objects `0..n`.
pub struct SortedPairsSpace {
    n: usize,
}

impl SortedPairsSpace {
    /// A space over `n` objects (values `0..n`).
    pub fn new(n: usize) -> SortedPairsSpace {
        assert!(n >= 2);
        SortedPairsSpace { n }
    }
}

impl ConfigurationSpace for SortedPairsSpace {
    type Config = PairConfig;

    fn num_objects(&self) -> usize {
        self.n
    }
    fn max_degree(&self) -> usize {
        2
    }
    fn multiplicity(&self) -> usize {
        2 // a singleton {a} defines both Left(a) and Right(a)
    }
    fn base_size(&self) -> usize {
        1
    }
    fn support_bound(&self) -> usize {
        1
    }

    fn defining_set(&self, pi: &PairConfig) -> Vec<usize> {
        match *pi {
            PairConfig::Pair(a, b) => vec![a, b],
            PairConfig::Left(a) | PairConfig::Right(a) => vec![a],
        }
    }

    fn conflicts(&self, pi: &PairConfig, x: usize) -> bool {
        match *pi {
            PairConfig::Pair(a, b) => a < x && x < b,
            PairConfig::Left(a) => x < a,
            PairConfig::Right(a) => x > a,
        }
    }

    fn active_configs(&self, objs: &[usize]) -> Vec<PairConfig> {
        let mut sorted = objs.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let mut out = Vec::with_capacity(sorted.len() + 1);
        if let (Some(&min), Some(&max)) = (sorted.first(), sorted.last()) {
            out.push(PairConfig::Left(min));
            out.push(PairConfig::Right(max));
        }
        for w in sorted.windows(2) {
            out.push(PairConfig::Pair(w[0], w[1]));
        }
        out
    }

    fn support_set(&self, objs: &[usize], pi: &PairConfig, x: usize) -> Vec<PairConfig> {
        let mut rest: Vec<usize> = objs.iter().copied().filter(|&o| o != x).collect();
        rest.sort_unstable();
        assert!(!rest.is_empty(), "support undefined below the base size");
        let succ = |v: usize| rest.iter().copied().find(|&o| o > v);
        let pred = |v: usize| rest.iter().rev().copied().find(|&o| o < v);
        let cfg = match *pi {
            PairConfig::Pair(a, b) if x == b => match succ(a) {
                Some(c) => PairConfig::Pair(a, c),
                None => PairConfig::Right(a),
            },
            PairConfig::Pair(a, b) => {
                assert_eq!(x, a, "x must be a defining object of pi");
                match pred(b) {
                    Some(p) => PairConfig::Pair(p, b),
                    None => PairConfig::Left(b),
                }
            }
            PairConfig::Left(a) => {
                assert_eq!(x, a);
                PairConfig::Left(rest[0])
            }
            PairConfig::Right(a) => {
                assert_eq!(x, a);
                PairConfig::Right(*rest.last().unwrap())
            }
        };
        vec![cfg]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::{check_k_support_along_order, check_support, SupportCheck};

    #[test]
    fn active_configs_of_sorted_set() {
        let s = SortedPairsSpace::new(10);
        let active = s.active_configs(&[7, 2, 5]);
        assert!(active.contains(&PairConfig::Left(2)));
        assert!(active.contains(&PairConfig::Pair(2, 5)));
        assert!(active.contains(&PairConfig::Pair(5, 7)));
        assert!(active.contains(&PairConfig::Right(7)));
        assert_eq!(active.len(), 4);
    }

    #[test]
    fn conflicts_are_open_intervals() {
        let s = SortedPairsSpace::new(10);
        let p = PairConfig::Pair(2, 6);
        assert!(!s.conflicts(&p, 2));
        assert!(s.conflicts(&p, 3));
        assert!(s.conflicts(&p, 5));
        assert!(!s.conflicts(&p, 6));
        assert!(!s.conflicts(&p, 8));
        assert!(s.conflicts(&PairConfig::Left(4), 1));
        assert!(s.conflicts(&PairConfig::Right(4), 9));
    }

    #[test]
    fn support_sets_satisfy_definition() {
        let s = SortedPairsSpace::new(12);
        // Y = {1, 4, 8, 10}; pi = Pair(4, 8); x = 8.
        let y = vec![1, 4, 8, 10];
        assert_eq!(
            check_support(&s, &y, &PairConfig::Pair(4, 8), 8),
            SupportCheck::Valid
        );
        assert_eq!(
            check_support(&s, &y, &PairConfig::Pair(4, 8), 4),
            SupportCheck::Valid
        );
        assert_eq!(
            check_support(&s, &y, &PairConfig::Left(1), 1),
            SupportCheck::Valid
        );
        assert_eq!(
            check_support(&s, &y, &PairConfig::Right(10), 10),
            SupportCheck::Valid
        );
    }

    #[test]
    fn exhaustive_k_support_random_orders() {
        for seed in 0..5 {
            let n = 24;
            let s = SortedPairsSpace::new(n);
            let order = chull_geometry::generators::random_permutation(n, seed);
            assert_eq!(check_k_support_along_order(&s, &order), None);
        }
    }
}
