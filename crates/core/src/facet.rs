//! Facet and ridge representations for the general-dimension hulls.
//!
//! In `d` dimensions a facet (oriented `d`-simplex under general position)
//! is identified by its `d` defining point ids, stored **sorted** in a
//! fixed-size inline array (no heap allocation per facet); a ridge is the
//! `d-1`-subset shared by two adjacent facets, stored the same way and used
//! directly as the hash key of the concurrent ridge multimap.

use chull_geometry::{Hyperplane, Sign};

/// Maximum supported dimension (inline array capacity); shared with the
/// geometry kernel so cached hyperplanes and facets agree on capacity.
pub use chull_geometry::kernel::MAX_DIM;

/// Sentinel filling unused key slots.
pub const NO_VERT: u32 = u32::MAX;

/// A facet's sorted vertex ids (first `dim` slots used).
pub type FacetVerts = [u32; MAX_DIM];

/// A ridge key: the sorted `dim - 1` vertex ids shared by two facets,
/// padded with [`NO_VERT`]. Used directly as the concurrent multimap key.
pub type RidgeKey = [u32; MAX_DIM];

/// Build a sorted facet vertex array from a slice of ids.
pub fn facet_verts(ids: &[u32]) -> FacetVerts {
    assert!(ids.len() <= MAX_DIM, "dimension exceeds MAX_DIM");
    let mut v = [NO_VERT; MAX_DIM];
    v[..ids.len()].copy_from_slice(ids);
    v[..ids.len()].sort_unstable();
    debug_assert!(
        v[..ids.len()].windows(2).all(|w| w[0] < w[1]),
        "duplicate vertex in facet"
    );
    v
}

/// The ridge of `facet` (with `dim` used slots) that omits the vertex at
/// position `omit`.
pub fn ridge_omitting(facet: &FacetVerts, dim: usize, omit: usize) -> RidgeKey {
    debug_assert!(omit < dim);
    let mut r = [NO_VERT; MAX_DIM];
    let mut k = 0;
    for (i, &fv) in facet.iter().enumerate().take(dim) {
        if i != omit {
            r[k] = fv;
            k += 1;
        }
    }
    r
}

/// The facet formed by joining ridge `r` (with `dim - 1` used slots) with
/// point `p`: sorted union.
pub fn join_ridge(r: &RidgeKey, dim: usize, p: u32) -> FacetVerts {
    let mut v = [NO_VERT; MAX_DIM];
    v[..dim - 1].copy_from_slice(&r[..dim - 1]);
    v[dim - 1] = p;
    v[..dim].sort_unstable();
    debug_assert!(
        v[..dim].windows(2).all(|w| w[0] < w[1]),
        "p already on ridge"
    );
    v
}

/// A facet of the (sequential or parallel) hull under construction.
#[derive(Clone, Debug)]
pub struct Facet {
    /// Sorted vertex ids (first `dim` used).
    pub verts: FacetVerts,
    /// The orientation sign meaning "visible": a point `q` is visible from
    /// this facet iff `orientd(verts..., q) == visible_sign`. Precomputed at
    /// creation as the negation of the sign of an interior reference point.
    pub visible_sign: Sign,
    /// Conflict list: ids of points visible from this facet, **sorted
    /// ascending** (point id order == insertion order), immutable after
    /// creation. The *conflict pivot* `min C(t)` is `conflicts[0]`.
    pub conflicts: Vec<u32>,
    /// Cached exact hyperplane through the facet's vertices, computed once
    /// at creation; every visibility test against this facet is an `O(d)`
    /// staged dot-product sign instead of an `O(d³)` determinant.
    pub plane: Hyperplane,
}

impl Facet {
    /// The conflict pivot `min(C(t))`, or `u32::MAX` when the conflict set
    /// is empty (the facet is final).
    #[inline]
    pub fn pivot(&self) -> u32 {
        self.conflicts.first().copied().unwrap_or(u32::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facet_verts_sorts() {
        let v = facet_verts(&[5, 2, 9]);
        assert_eq!(&v[..3], &[2, 5, 9]);
        assert_eq!(v[3], NO_VERT);
    }

    #[test]
    fn ridge_omitting_each_vertex() {
        let f = facet_verts(&[1, 4, 7, 9]);
        assert_eq!(&ridge_omitting(&f, 4, 0)[..3], &[4, 7, 9]);
        assert_eq!(&ridge_omitting(&f, 4, 1)[..3], &[1, 7, 9]);
        assert_eq!(&ridge_omitting(&f, 4, 3)[..3], &[1, 4, 7]);
        // Unused slots are the sentinel, so keys hash consistently.
        assert_eq!(ridge_omitting(&f, 4, 0)[3], NO_VERT);
    }

    #[test]
    fn join_ridge_roundtrip() {
        let f = facet_verts(&[3, 6, 8]);
        for omit in 0..3 {
            let r = ridge_omitting(&f, 3, omit);
            let back = join_ridge(&r, 3, f[omit]);
            assert_eq!(back, f);
        }
    }

    #[test]
    fn pivot_of_facet() {
        let f = Facet {
            verts: facet_verts(&[0, 1]),
            visible_sign: Sign::Positive,
            conflicts: vec![4, 9],
            plane: Hyperplane::placeholder(2),
        };
        assert_eq!(f.pivot(), 4);
        let f2 = Facet {
            verts: facet_verts(&[0, 1]),
            visible_sign: Sign::Positive,
            conflicts: vec![],
            plane: Hyperplane::placeholder(2),
        };
        assert_eq!(f2.pivot(), u32::MAX);
    }
}
