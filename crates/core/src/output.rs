//! Hull outputs in a canonical, comparison-friendly form.

use crate::facet::{FacetVerts, NO_VERT};
use std::collections::BTreeSet;

/// The facets of a computed convex hull.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HullOutput {
    /// Dimension `d`.
    pub dim: usize,
    /// Facets as sorted vertex-id arrays (first `dim` slots used).
    pub facets: Vec<FacetVerts>,
}

impl HullOutput {
    /// Canonical form: the sorted set of sorted vertex tuples. Two hull
    /// computations agree iff their canonical forms are equal.
    pub fn canonical(&self) -> BTreeSet<Vec<u32>> {
        self.facets.iter().map(|f| f[..self.dim].to_vec()).collect()
    }

    /// The set of hull vertices (point ids appearing on any facet).
    pub fn vertices(&self) -> BTreeSet<u32> {
        self.facets
            .iter()
            .flat_map(|f| f[..self.dim].iter().copied())
            .filter(|&v| v != NO_VERT)
            .collect()
    }

    /// Number of facets.
    pub fn num_facets(&self) -> usize {
        self.facets.len()
    }

    /// Number of distinct ridges (each must be shared by exactly two facets
    /// in a valid closed hull).
    pub fn num_ridges(&self) -> usize {
        let mut ridges = BTreeSet::new();
        for f in &self.facets {
            for omit in 0..self.dim {
                let r: Vec<u32> = (0..self.dim).filter(|&i| i != omit).map(|i| f[i]).collect();
                ridges.insert(r);
            }
        }
        ridges.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::facet::facet_verts;

    #[test]
    fn canonical_ignores_order() {
        let a = HullOutput {
            dim: 2,
            facets: vec![facet_verts(&[0, 1]), facet_verts(&[1, 2])],
        };
        let b = HullOutput {
            dim: 2,
            facets: vec![facet_verts(&[2, 1]), facet_verts(&[1, 0])],
        };
        assert_eq!(a.canonical(), b.canonical());
        assert_eq!(a.vertices().len(), 3);
    }

    #[test]
    fn ridge_count_triangle() {
        // 2D triangle: 3 edges, ridges are the 3 vertices.
        let h = HullOutput {
            dim: 2,
            facets: vec![
                facet_verts(&[0, 1]),
                facet_verts(&[1, 2]),
                facet_verts(&[0, 2]),
            ],
        };
        assert_eq!(h.num_ridges(), 3);
    }
}
