//! Epoch-versioned, immutable hull snapshots — the service's read side.
//!
//! Each shard worker owns a mutable [`OnlineHull`]; after applying a batch
//! it publishes a frozen copy behind an `Arc`. Readers grab the `Arc`
//! under a short lock and then query **without any synchronization**:
//! every query on [`HullSnapshot`] takes `&self` and descends the frozen
//! history (influence) graph, so the paper's expected `O(log n)` point
//! location (Section 4) carries over verbatim to the serving path — a
//! snapshot is exactly the history graph of some prefix of the insertion
//! sequence, and the support property `C(t) ⊆ C(t1) ∪ C(t2)` guarantees
//! the descent finds every visible facet of that prefix.
//!
//! Publication also freezes the snapshot's **query accelerators**
//! ([`QueryAccel`]): the SoA packed-plane filter block over every facet
//! plane in the history, and the hull's sorted vertex list for `Extreme`.
//! Both are built once per epoch and shared read-only by every query
//! thread; their lifetime is exactly the snapshot's (DESIGN §S18).
//!
//! A shard that has not yet seen `d + 1` affinely independent points is
//! **bootstrapping**: it buffers arrivals and answers geometric queries
//! with "not ready" (the hull is still degenerate).

use chull_core::online::OnlineHull;
use chull_core::HullOutput;
use chull_geometry::{KernelCounts, PlaneBlock};

/// Frozen state behind one snapshot.
#[derive(Clone)]
pub(crate) enum SnapState {
    /// Fewer than `d + 1` affinely independent points so far; the buffered
    /// arrivals in order.
    Boot(Vec<Vec<i64>>),
    /// A live hull (frozen copy of the shard's online hull).
    Live(Box<OnlineHull>),
}

/// Per-snapshot read accelerators, built once at publication.
#[derive(Clone)]
pub(crate) struct QueryAccel {
    /// SoA f64 filter block over **every** facet plane ever created
    /// (the history descent walks dead facets too), indexed by facet id.
    pub block: PlaneBlock,
    /// Current hull vertex ids, ascending — `Extreme` scans this instead
    /// of re-deriving the vertex set from the facet list per query.
    pub verts: Vec<u32>,
}

/// An immutable, epoch-stamped view of one shard; see module docs.
#[derive(Clone)]
pub struct HullSnapshot {
    /// Publication epoch: the number of ingest batches applied before this
    /// snapshot was taken. Strictly increasing per shard.
    pub epoch: u64,
    /// Points accepted so far (buffered + inserted, including seeds).
    pub applied: u64,
    /// Dimension.
    pub dim: usize,
    pub(crate) state: SnapState,
    /// Read accelerators (`None` while bootstrapping).
    pub(crate) accel: Option<QueryAccel>,
}

impl HullSnapshot {
    /// The empty snapshot a shard publishes before any point arrives.
    pub fn empty(dim: usize) -> HullSnapshot {
        HullSnapshot {
            epoch: 0,
            applied: 0,
            dim,
            state: SnapState::Boot(Vec::new()),
            accel: None,
        }
    }

    /// Freeze a live hull together with its query accelerators.
    pub(crate) fn freeze_live(epoch: u64, applied: u64, hull: OnlineHull) -> HullSnapshot {
        let accel = QueryAccel {
            block: hull.plane_block(),
            verts: hull.hull_vertices(),
        };
        HullSnapshot {
            epoch,
            applied,
            dim: hull.points().dim(),
            state: SnapState::Live(Box::new(hull)),
            accel: Some(accel),
        }
    }

    /// The packed-plane filter block, when live.
    fn block(&self) -> Option<&PlaneBlock> {
        self.accel.as_ref().map(|a| &a.block)
    }

    /// False while the shard is still assembling its seed simplex.
    pub fn ready(&self) -> bool {
        matches!(self.state, SnapState::Live(_))
    }

    /// Membership test; `None` while bootstrapping. Kernel counters go to
    /// the caller's accumulator (folded into shard atomics by the server).
    /// Descends the history graph through the snapshot's packed-plane
    /// filter; see [`HullSnapshot::contains_scan`] for the oracle twin.
    pub fn contains(&self, point: &[i64], counts: &mut KernelCounts) -> Option<bool> {
        match &self.state {
            SnapState::Boot(_) => None,
            SnapState::Live(h) => Some(h.contains_with(point, counts, self.block())),
        }
    }

    /// Number of hull facets visible from `point` (0 = inside or on);
    /// `None` while bootstrapping.
    pub fn visible_count(&self, point: &[i64], counts: &mut KernelCounts) -> Option<u32> {
        match &self.state {
            SnapState::Boot(_) => None,
            SnapState::Live(h) => {
                Some(h.visible_facets_with(point, counts, self.block()).len() as u32)
            }
        }
    }

    /// The hull vertex extreme in `direction`; `None` while bootstrapping.
    /// Served from the snapshot's cached vertex list — directions at
    /// infinity never descend the history graph (DESIGN §S18).
    pub fn extreme(&self, direction: &[i64]) -> Option<(u32, Vec<i64>)> {
        match (&self.state, &self.accel) {
            (SnapState::Boot(_), _) => None,
            (SnapState::Live(h), Some(a)) => Some(h.extreme_with(direction, &a.verts)),
            (SnapState::Live(h), None) => Some(h.extreme(direction)),
        }
    }

    /// Linear-scan oracle twin of [`HullSnapshot::contains`]: test every
    /// alive facet with the per-facet staged kernel. Same answer, O(f)
    /// cost — the runtime A/B baseline behind `hull query --scan` and the
    /// wire `ContainsScan` op.
    pub fn contains_scan(&self, point: &[i64], counts: &mut KernelCounts) -> Option<bool> {
        match &self.state {
            SnapState::Boot(_) => None,
            SnapState::Live(h) => Some(h.contains_scan(point, counts)),
        }
    }

    /// Linear-scan oracle twin of [`HullSnapshot::visible_count`].
    pub fn visible_count_scan(&self, point: &[i64], counts: &mut KernelCounts) -> Option<u32> {
        match &self.state {
            SnapState::Boot(_) => None,
            SnapState::Live(h) => Some(h.visible_facets_scan(point, counts).len() as u32),
        }
    }

    /// Baseline twin of [`HullSnapshot::extreme`]: re-derives the vertex
    /// set from the alive facets per query instead of using the cached
    /// list. Same answer (ties break toward the smallest id either way).
    pub fn extreme_scan(&self, direction: &[i64]) -> Option<(u32, Vec<i64>)> {
        match &self.state {
            SnapState::Boot(_) => None,
            SnapState::Live(h) => Some(h.extreme(direction)),
        }
    }

    /// The current hull facets (empty while bootstrapping).
    pub fn output(&self) -> HullOutput {
        match &self.state {
            SnapState::Boot(_) => HullOutput {
                dim: self.dim,
                facets: Vec::new(),
            },
            SnapState::Live(h) => h.output(),
        }
    }

    /// All points this snapshot holds, flattened `dim` per point, in
    /// arrival order (for `Live`, seed-simplex points come first — the
    /// order the hull assigned vertex ids in).
    pub fn flat_points(&self) -> Vec<i64> {
        match &self.state {
            SnapState::Boot(pts) => pts.iter().flatten().copied().collect(),
            SnapState::Live(h) => h.points().flat().to_vec(),
        }
    }

    /// Number of points held.
    pub fn num_points(&self) -> usize {
        match &self.state {
            SnapState::Boot(pts) => pts.len(),
            SnapState::Live(h) => h.num_points(),
        }
    }

    /// Number of facets on the current hull (0 while bootstrapping).
    pub fn num_facets(&self) -> usize {
        match &self.state {
            SnapState::Boot(_) => 0,
            SnapState::Live(h) => h.output().num_facets(),
        }
    }

    /// Planes in the packed filter block = facets ever created (0 while
    /// bootstrapping). Scrape-time gauge source.
    pub fn plane_block_len(&self) -> usize {
        self.accel.as_ref().map_or(0, |a| a.block.len())
    }

    /// Vertices on the current hull (0 while bootstrapping). Scrape-time
    /// gauge source.
    pub fn hull_vertex_count(&self) -> usize {
        self.accel.as_ref().map_or(0, |a| a.verts.len())
    }

    /// Ingest-path staged-kernel counters accumulated by the hull this
    /// snapshot was taken from (zero while bootstrapping).
    pub fn ingest_kernel(&self) -> KernelCounts {
        match &self.state {
            SnapState::Boot(_) => KernelCounts::default(),
            SnapState::Live(h) => h.kernel,
        }
    }

    /// Dependence depth of the hull behind this snapshot — the deepest
    /// chain in its history graph, the observable Theorem 4.2 bounds by
    /// `σ·H_n` whp (0 while bootstrapping).
    pub fn dep_depth(&self) -> u64 {
        match &self.state {
            SnapState::Boot(_) => 0,
            SnapState::Live(h) => h.dep_depth(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boot_snapshot_answers_not_ready() {
        let s = HullSnapshot::empty(2);
        assert!(!s.ready());
        let mut k = KernelCounts::default();
        assert_eq!(s.contains(&[0, 0], &mut k), None);
        assert_eq!(s.visible_count(&[0, 0], &mut k), None);
        assert_eq!(s.extreme(&[1, 0]), None);
        assert_eq!(s.contains_scan(&[0, 0], &mut k), None);
        assert_eq!(s.visible_count_scan(&[0, 0], &mut k), None);
        assert_eq!(s.extreme_scan(&[1, 0]), None);
        assert_eq!(s.num_points(), 0);
        assert_eq!(s.num_facets(), 0);
        assert_eq!(s.plane_block_len(), 0);
        assert_eq!(s.hull_vertex_count(), 0);
        assert!(s.output().facets.is_empty());
    }

    #[test]
    fn live_snapshot_queries_shared() {
        let mut h = OnlineHull::new(2, &[vec![0, 0], vec![10, 0], vec![0, 10]]);
        h.insert(&[10, 10]);
        let s = HullSnapshot::freeze_live(1, 4, h);
        assert!(s.ready());
        let mut k = KernelCounts::default();
        assert_eq!(s.contains(&[5, 5], &mut k), Some(true));
        assert_eq!(s.contains(&[50, 50], &mut k), Some(false));
        assert!(s.visible_count(&[50, 50], &mut k).unwrap() > 0);
        assert_eq!(s.extreme(&[1, 1]).unwrap().1, vec![10, 10]);
        assert_eq!(s.num_facets(), 4);
        assert!(k.tests > 0);
        assert!(s.plane_block_len() >= s.num_facets());
        assert_eq!(s.hull_vertex_count(), 4, "square has 4 corners");
    }

    #[test]
    fn scan_twins_agree_with_descent() {
        let mut h = OnlineHull::new(2, &[vec![0, 0], vec![10, 0], vec![0, 10]]);
        for p in [[10, 10], [20, 5], [5, 20], [-3, -3], [7, 7]] {
            h.insert(&p);
        }
        let s = HullSnapshot::freeze_live(2, 8, h);
        let mut k = KernelCounts::default();
        for q in [[5i64, 5], [100, 100], [-50, 2], [0, 0], [21, 4]] {
            assert_eq!(s.contains(&q, &mut k), s.contains_scan(&q, &mut k));
            assert_eq!(
                s.visible_count(&q, &mut k),
                s.visible_count_scan(&q, &mut k)
            );
            assert_eq!(s.extreme(&q), s.extreme_scan(&q));
        }
        #[cfg(not(feature = "linear-scan"))]
        assert!(k.descent_steps > 0, "descent path must report its steps");
    }
}
