//! The staged visibility kernel's contract: for every facet and query, the
//! cached-hyperplane sign equals a fresh [`orientd`] determinant — on
//! random inputs, on adversarial nearly-degenerate queries sitting on or
//! one unit off the hyperplane, and on huge coordinates that force the
//! BigInt construction and evaluation fallbacks.

use chull_geometry::predicates::{orientd, orientd_hom};
use chull_geometry::rng::ChaCha8Rng;
use chull_geometry::MAX_COORD;
use chull_geometry::{Hyperplane, KernelCounts, Sign};

fn staged_sign(plane: &Hyperplane, q: &[i64], counts: &mut KernelCounts) -> Sign {
    plane.sign_point(q, counts)
}

fn naive_sign(dim: usize, facet: &[Vec<i64>], q: &[i64]) -> Sign {
    let mut rows: Vec<&[i64]> = facet.iter().map(|r| r.as_slice()).collect();
    rows.push(q);
    orientd(dim, &rows)
}

/// Random facets and queries across 2D/3D/5D at moderate coordinates.
#[test]
fn staged_matches_orientd_random() {
    for &dim in &[2usize, 3, 5] {
        let mut rng = ChaCha8Rng::seed_from_u64(100 + dim as u64);
        let mut counts = KernelCounts::default();
        for _ in 0..120 {
            let facet: Vec<Vec<i64>> = (0..dim)
                .map(|_| {
                    (0..dim)
                        .map(|_| rng.gen_range(-1_000_000i64..=1_000_000))
                        .collect()
                })
                .collect();
            let rows: Vec<&[i64]> = facet.iter().map(|r| r.as_slice()).collect();
            let plane = Hyperplane::new(dim, &rows);
            for _ in 0..20 {
                let q: Vec<i64> = (0..dim)
                    .map(|_| rng.gen_range(-1_000_000i64..=1_000_000))
                    .collect();
                assert_eq!(
                    staged_sign(&plane, &q, &mut counts),
                    naive_sign(dim, &facet, &q),
                    "dim {dim} facet {facet:?} q {q:?}"
                );
            }
        }
        assert_eq!(
            counts.tests,
            counts.filter_hits + counts.i128_fallbacks + counts.bigint_fallbacks
        );
        assert!(counts.filter_hits > 0, "dim {dim}: filter never certified");
    }
}

/// Adversarial queries: affine combinations of the facet vertices (exactly
/// on the hyperplane, sign must be Zero) and one-unit perturbations off
/// them (sign must be exactly the perturbation side). The f64 filter can
/// never certify these; the exact stages must.
#[test]
fn staged_matches_orientd_near_degenerate() {
    for &dim in &[2usize, 3, 5] {
        let mut rng = ChaCha8Rng::seed_from_u64(200 + dim as u64);
        let mut counts = KernelCounts::default();
        for _ in 0..80 {
            let facet: Vec<Vec<i64>> = (0..dim)
                .map(|_| {
                    (0..dim)
                        .map(|_| rng.gen_range(-1_000_000i64..=1_000_000))
                        .collect()
                })
                .collect();
            let rows: Vec<&[i64]> = facet.iter().map(|r| r.as_slice()).collect();
            let plane = Hyperplane::new(dim, &rows);
            // Integer affine combination: weights summing to 1.
            let mut q = vec![0i64; dim];
            let mut wsum = 0i64;
            for (i, row) in facet.iter().enumerate() {
                let w = if i + 1 == dim {
                    1 - wsum
                } else {
                    rng.gen_range(-3i64..=3)
                };
                wsum += w;
                for (acc, &c) in q.iter_mut().zip(row) {
                    *acc += w * c;
                }
            }
            let on = staged_sign(&plane, &q, &mut counts);
            assert_eq!(on, Sign::Zero, "dim {dim}: affine combination not on plane");
            assert_eq!(on, naive_sign(dim, &facet, &q));
            // One-unit nudges along each axis: the smallest representable
            // perturbation; filter fails, exact stages decide.
            for axis in 0..dim {
                for delta in [-1i64, 1] {
                    let mut qq = q.clone();
                    qq[axis] += delta;
                    assert_eq!(
                        staged_sign(&plane, &qq, &mut counts),
                        naive_sign(dim, &facet, &qq),
                        "dim {dim} axis {axis} delta {delta}"
                    );
                }
            }
        }
        assert_eq!(
            counts.tests,
            counts.filter_hits + counts.i128_fallbacks + counts.bigint_fallbacks
        );
        assert!(
            counts.i128_fallbacks + counts.bigint_fallbacks > 0,
            "dim {dim}: degenerate queries must reach an exact stage"
        );
    }
}

/// Coordinates near `MAX_COORD` in 5D overflow the i128 cofactor minors:
/// construction must fall back to BigInt coefficients, and evaluation must
/// still agree with the (BigInt-backed) naive determinant everywhere.
#[test]
fn forced_overflow_exercises_bigint_fallback() {
    let dim = 5usize;
    let mut rng = ChaCha8Rng::seed_from_u64(333);
    let mut counts = KernelCounts::default();
    let mut saw_big = false;
    for _ in 0..20 {
        let facet: Vec<Vec<i64>> = (0..dim)
            .map(|_| {
                (0..dim)
                    .map(|_| rng.gen_range(-MAX_COORD..=MAX_COORD))
                    .collect()
            })
            .collect();
        let rows: Vec<&[i64]> = facet.iter().map(|r| r.as_slice()).collect();
        let plane = Hyperplane::new(dim, &rows);
        saw_big |= plane.is_big();
        for _ in 0..6 {
            let q: Vec<i64> = (0..dim)
                .map(|_| rng.gen_range(-MAX_COORD..=MAX_COORD))
                .collect();
            assert_eq!(
                staged_sign(&plane, &q, &mut counts),
                naive_sign(dim, &facet, &q)
            );
        }
        // On-plane query at huge coordinates: copy a vertex.
        assert_eq!(staged_sign(&plane, &facet[0], &mut counts), Sign::Zero);
    }
    assert!(saw_big, "MAX_COORD 5D facets must overflow i128 minors");
    assert_eq!(
        counts.tests,
        counts.filter_hits + counts.i128_fallbacks + counts.bigint_fallbacks
    );
    assert!(
        counts.bigint_fallbacks > 0,
        "no test reached the BigInt stage"
    );
}

/// The homogeneous variant agrees with `orientd_hom` (used for the
/// interior-reference orientation at facet creation).
#[test]
fn sign_hom_matches_orientd_hom() {
    for &dim in &[2usize, 3, 5] {
        let mut rng = ChaCha8Rng::seed_from_u64(400 + dim as u64);
        for _ in 0..60 {
            let facet: Vec<Vec<i64>> = (0..dim)
                .map(|_| {
                    (0..dim)
                        .map(|_| rng.gen_range(-100_000i64..=100_000))
                        .collect()
                })
                .collect();
            let rows: Vec<&[i64]> = facet.iter().map(|r| r.as_slice()).collect();
            let plane = Hyperplane::new(dim, &rows);
            let r: Vec<i64> = (0..dim)
                .map(|_| rng.gen_range(-500_000i64..=500_000))
                .collect();
            let w = rng.gen_range(1i64..=9);
            let mut hom_rows: Vec<(&[i64], i64)> =
                facet.iter().map(|f| (f.as_slice(), 1)).collect();
            hom_rows.push((r.as_slice(), w));
            assert_eq!(
                plane.sign_hom(&r, w),
                orientd_hom(dim, &hom_rows),
                "dim {dim}"
            );
        }
    }
}
