//! Shared workloads and helpers for the benchmarks and the experiment
//! harness.

#![warn(missing_docs)]

pub mod harness;

use chull_core::prepare_points;
use chull_geometry::{generators, PointSet};

/// Prepared (randomly ordered, seed-simplex-first) 2D disk workload.
pub fn prepared_disk_2d(n: usize, seed: u64) -> PointSet {
    prepare_points(
        &PointSet::from_points2(&generators::disk_2d(n, 1 << 30, seed)),
        seed ^ 0x9E37_79B9,
    )
}

/// Prepared 2D convex-position (parabola) workload: every point extreme.
pub fn prepared_parabola_2d(n: usize, seed: u64) -> PointSet {
    prepare_points(
        &PointSet::from_points2(&generators::parabola_2d(n, seed)),
        seed ^ 0x517C_C1B7,
    )
}

/// Prepared 3D ball workload.
pub fn prepared_ball_3d(n: usize, seed: u64) -> PointSet {
    prepare_points(
        &PointSet::from_points3(&generators::ball_3d(n, 1 << 30, seed)),
        seed ^ 0x2545_F491,
    )
}

/// Prepared 3D near-sphere workload: Theta(n) hull facets.
pub fn prepared_sphere_3d(n: usize, seed: u64) -> PointSet {
    prepare_points(
        &PointSet::from_points3(&generators::near_sphere_3d(n, 1 << 30, seed)),
        seed ^ 0x1405_7B7E,
    )
}

/// Prepared d-dimensional ball workload.
pub fn prepared_ball_d(dim: usize, n: usize, seed: u64) -> PointSet {
    prepare_points(
        &generators::ball_d(dim, n, 1 << 24, seed),
        seed ^ 0xDEAD_BEEF,
    )
}

/// The harmonic number `H_n`.
pub fn harmonic(n: usize) -> f64 {
    (1..=n).map(|i| 1.0 / i as f64).sum()
}

/// Median wall-clock seconds over `reps` runs of `f`.
pub fn time_median<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = std::time::Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    times[times.len() / 2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_are_deterministic() {
        assert_eq!(prepared_disk_2d(100, 1), prepared_disk_2d(100, 1));
        assert_eq!(prepared_ball_3d(50, 2), prepared_ball_3d(50, 2));
        assert_eq!(prepared_ball_d(4, 30, 3), prepared_ball_d(4, 30, 3));
    }

    #[test]
    fn harmonic_values() {
        assert!((harmonic(1) - 1.0).abs() < 1e-12);
        assert!((harmonic(4) - (1.0 + 0.5 + 1.0 / 3.0 + 0.25)).abs() < 1e-12);
    }
}
