//! Instrumentation records shared by the hull algorithms.

/// Counters and depth measurements from one hull construction.
///
/// The paper's claims map onto these fields:
/// * Theorem 1.1 / 4.2 — `dep_depth` is `D(G(S))`, logarithmic whp;
/// * Theorem 5.3 — `recursion_depth` of `ProcessRidge`, bounded by
///   `dep_depth` levels;
/// * Theorems 5.4/5.5 — `visibility_tests` (the work) is identical between
///   Algorithm 2 and Algorithm 3, and `rounds` is the synchronous span proxy.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HullStats {
    /// Number of input points.
    pub n: usize,
    /// Dimension `d`.
    pub dim: usize,
    /// Exact plane-side tests performed (the algorithm's work).
    pub visibility_tests: u64,
    /// Facets ever created (including later replaced/buried ones).
    pub facets_created: u64,
    /// Facets on the final hull.
    pub hull_facets: u64,
    /// Depth of the configuration dependence graph `D(G(S))`
    /// (computed by the instrumented runs; 0 if not recorded).
    pub dep_depth: u64,
    /// Maximum `ProcessRidge` recursion depth (parallel runs only).
    pub recursion_depth: u64,
    /// Number of level-synchronous rounds (rounds runner only).
    pub rounds: u64,
    /// `ProcessRidge` invocations that buried a ridge (parallel only).
    pub buried: u64,
    /// `ProcessRidge` invocations that replaced a facet (parallel only).
    pub replaced: u64,
    /// Depth of the *naive* dependence graph, where a new facet depends on
    /// **every** facet its pivot removes (the pre-paper, synchronous
    /// scheduling discipline). The gap between this and `dep_depth` is what
    /// the paper's support sets buy (ablation E12a). Sequential runs only.
    pub naive_dep_depth: u64,
}

impl HullStats {
    /// The harmonic number `H_n` for normalizing depths (Theorem 4.2).
    pub fn harmonic(&self) -> f64 {
        (1..=self.n).map(|i| 1.0 / i as f64).sum()
    }

    /// `dep_depth / H_n` — bounded by a constant whp per Theorem 4.2.
    pub fn depth_over_harmonic(&self) -> f64 {
        self.dep_depth as f64 / self.harmonic()
    }
}
