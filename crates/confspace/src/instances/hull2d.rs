//! The 2D convex hull facet configuration space (Section 5, Table 1).
//!
//! Objects are input points (general position assumed: no three collinear).
//! Each ordered pair `(a, b)` of points is a configuration — the oriented
//! hull edge from `a` to `b` with the hull interior on its left. Its
//! defining set is `{a, b}` (degree `g = 2`, multiplicity `c = 2` since the
//! unordered pair defines both orientations) and its conflict set is every
//! point strictly to the *right* of the directed line `a -> b` (the points
//! the edge is *visible* from). The active configurations of `Y` are exactly
//! the counterclockwise hull edges of `Y`.
//!
//! Theorem 5.1 says this space has 2-support: the support set for an edge
//! `t = (r, x)` is the pair of hull edges of `Y \ {x}` incident on the
//! shared endpoint ("ridge") `r`. This instance is the brute-force oracle
//! that the E5 experiment and the property tests validate the theorem with.

use crate::space::ConfigurationSpace;
use chull_geometry::predicates::orient2d;
use chull_geometry::{Point2i, Sign};

/// An oriented hull edge `from -> to` (object indices).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Edge {
    /// Source object index.
    pub from: usize,
    /// Destination object index.
    pub to: usize,
}

/// The 2D hull facet space over a fixed point set.
pub struct Hull2dSpace {
    points: Vec<Point2i>,
}

impl Hull2dSpace {
    /// Build the space; points must be distinct and in general position
    /// (no three collinear) for the theorems to apply exactly.
    pub fn new(points: Vec<Point2i>) -> Hull2dSpace {
        assert!(points.len() >= 3);
        Hull2dSpace { points }
    }

    /// The input points.
    pub fn points(&self) -> &[Point2i] {
        &self.points
    }

    /// Counterclockwise hull of the objects in `objs` (indices into the
    /// point set), as object indices. Monotone chain with strict turns.
    pub fn hull_ccw(&self, objs: &[usize]) -> Vec<usize> {
        let mut idx = objs.to_vec();
        idx.sort_unstable_by_key(|&i| self.points[i]);
        idx.dedup();
        if idx.len() < 3 {
            return idx;
        }
        let p = |i: usize| self.points[i];
        let mut lower: Vec<usize> = Vec::new();
        for &i in &idx {
            while lower.len() >= 2
                && orient2d(p(lower[lower.len() - 2]), p(lower[lower.len() - 1]), p(i))
                    != Sign::Positive
            {
                lower.pop();
            }
            lower.push(i);
        }
        let mut upper: Vec<usize> = Vec::new();
        for &i in idx.iter().rev() {
            while upper.len() >= 2
                && orient2d(p(upper[upper.len() - 2]), p(upper[upper.len() - 1]), p(i))
                    != Sign::Positive
            {
                upper.pop();
            }
            upper.push(i);
        }
        lower.pop();
        upper.pop();
        lower.extend(upper);
        lower
    }
}

impl ConfigurationSpace for Hull2dSpace {
    type Config = Edge;

    fn num_objects(&self) -> usize {
        self.points.len()
    }
    fn max_degree(&self) -> usize {
        2 // g = d
    }
    fn multiplicity(&self) -> usize {
        2 // "facing up and down" (Table 1)
    }
    fn base_size(&self) -> usize {
        3 // n_b = d + 1
    }
    fn support_bound(&self) -> usize {
        2 // Theorem 5.1
    }

    fn defining_set(&self, pi: &Edge) -> Vec<usize> {
        vec![pi.from, pi.to]
    }

    fn conflicts(&self, pi: &Edge, x: usize) -> bool {
        if x == pi.from || x == pi.to {
            return false;
        }
        orient2d(self.points[pi.from], self.points[pi.to], self.points[x]) == Sign::Negative
    }

    fn active_configs(&self, objs: &[usize]) -> Vec<Edge> {
        let hull = self.hull_ccw(objs);
        if hull.len() < 3 {
            return Vec::new();
        }
        (0..hull.len())
            .map(|i| Edge {
                from: hull[i],
                to: hull[(i + 1) % hull.len()],
            })
            .collect()
    }

    fn support_set(&self, objs: &[usize], pi: &Edge, x: usize) -> Vec<Edge> {
        assert!(x == pi.from || x == pi.to, "x must define pi");
        let r = if x == pi.from { pi.to } else { pi.from };
        let rest: Vec<usize> = objs.iter().copied().filter(|&o| o != x).collect();
        let hull = self.hull_ccw(&rest);
        let pos = hull
            .iter()
            .position(|&v| v == r)
            .unwrap_or_else(|| panic!("ridge {r} not on hull of Y \\ {{x}}"));
        let n = hull.len();
        let prev = hull[(pos + n - 1) % n];
        let next = hull[(pos + 1) % n];
        vec![Edge { from: prev, to: r }, Edge { from: r, to: next }]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::{check_k_support_along_order, check_support, SupportCheck};
    use chull_geometry::generators;

    fn square_plus_center() -> Hull2dSpace {
        Hull2dSpace::new(vec![
            Point2i::new(0, 0),
            Point2i::new(10, 0),
            Point2i::new(10, 10),
            Point2i::new(0, 10),
            Point2i::new(5, 5),
        ])
    }

    #[test]
    fn hull_ccw_square() {
        let s = square_plus_center();
        let hull = s.hull_ccw(&[0, 1, 2, 3, 4]);
        assert_eq!(hull.len(), 4);
        assert!(!hull.contains(&4), "interior point on hull");
        // Counterclockwise: consecutive triples turn left.
        for i in 0..hull.len() {
            let a = s.points()[hull[i]];
            let b = s.points()[hull[(i + 1) % hull.len()]];
            let c = s.points()[hull[(i + 2) % hull.len()]];
            assert_eq!(orient2d(a, b, c), Sign::Positive);
        }
    }

    #[test]
    fn active_configs_are_hull_edges_with_no_conflicts() {
        let s = square_plus_center();
        let objs = vec![0, 1, 2, 3, 4];
        for cfg in s.active_configs(&objs) {
            for &o in &objs {
                assert!(
                    !s.conflicts(&cfg, o),
                    "active edge {cfg:?} conflicts with {o}"
                );
            }
        }
    }

    #[test]
    fn conflict_is_visibility() {
        let s = square_plus_center();
        // Edge (0 -> 1) is the bottom edge (hull interior above); a point
        // below the line y = 0 is visible from it.
        let e = Edge { from: 0, to: 1 };
        assert!(!s.conflicts(&e, 2));
        assert!(!s.conflicts(&e, 4));
        // No input point is below, so check geometric orientation directly.
        assert_eq!(
            orient2d(Point2i::new(0, 0), Point2i::new(10, 0), Point2i::new(3, -5)),
            Sign::Negative
        );
    }

    #[test]
    fn support_set_is_two_edges_at_ridge() {
        let s = square_plus_center();
        // Y = all points; the edge (1 -> 2) with x = 2 has ridge 1;
        // in hull(Y \ {2}) the two edges at vertex 1 support it.
        let objs = vec![0, 1, 2, 3, 4];
        let pi = Edge { from: 1, to: 2 };
        let sup = s.support_set(&objs, &pi, 2);
        assert_eq!(sup.len(), 2);
        assert!(sup.iter().all(|e| e.from == 1 || e.to == 1));
        assert_eq!(check_support(&s, &objs, &pi, 2), SupportCheck::Valid);
    }

    #[test]
    fn theorem_5_1_exhaustive_on_random_inputs() {
        // E5: every active configuration along random insertion orders has a
        // valid 2-support set (Definition 3.2 checked by brute force).
        for seed in 0..3u64 {
            let pts = generators::disk_2d(16, 1 << 20, seed);
            let order = generators::random_permutation(pts.len(), seed + 100);
            let s = Hull2dSpace::new(pts);
            assert_eq!(
                check_k_support_along_order(&s, &order),
                None,
                "2-support violated (seed {seed})"
            );
        }
    }

    #[test]
    fn dep_graph_depth_logarithmic_on_hull2d() {
        use crate::depgraph::build_dep_graph;
        let n = 128;
        let pts = generators::disk_2d(n, 1 << 20, 7);
        let order = generators::random_permutation(n, 8);
        let s = Hull2dSpace::new(pts);
        let stats = build_dep_graph(&s, &order, false);
        let hn = stats.harmonic();
        // Theorem 4.2 with g = k = 2: depth < sigma * H_n whp for
        // sigma >= g k e^2 ~ 29.6. Use the theorem's constant as the test
        // bound; typical observed values are ~2 H_n.
        assert!(
            (stats.depth as f64) < 30.0 * hn,
            "depth {} exceeds theorem bound at n = {n}",
            stats.depth
        );
        assert!(stats.depth >= 2);
    }
}
