//! Application benchmarks: Delaunay via lifting, half-plane intersection,
//! circle intersection.

use chull_apps::circles::{incremental_intersection, random_circles};
use chull_apps::delaunay::{delaunay, Engine};
use chull_apps::halfspace::{intersection_via_duality, random_halfplanes};
use chull_geometry::generators;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_apps(c: &mut Criterion) {
    let mut group = c.benchmark_group("apps");

    let pts = generators::disk_2d(5_000, 1 << 20, 3);
    group.bench_function(BenchmarkId::new("delaunay_lifting_seq", pts.len()), |b| {
        b.iter(|| delaunay(&pts, Engine::Sequential, 1));
    });
    group.bench_function(BenchmarkId::new("delaunay_lifting_par", pts.len()), |b| {
        b.iter(|| delaunay(&pts, Engine::Parallel, 1));
    });

    let hs = random_halfplanes(2_000, 4);
    group.bench_function(BenchmarkId::new("halfplanes_duality", hs.len()), |b| {
        b.iter(|| intersection_via_duality(&hs));
    });

    let circles = random_circles(2_000, 0.45, 5);
    group.bench_function(BenchmarkId::new("circle_intersection", circles.len()), |b| {
        b.iter(|| incremental_intersection(&circles));
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_apps
}
criterion_main!(benches);
