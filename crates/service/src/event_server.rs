//! The event-loop serving back end (DESIGN §S19): one reactor thread
//! multiplexing every connection over a `chull-net` readiness poller,
//! with a small dispatcher pool executing requests off the loop.
//!
//! ```text
//!            readiness                 bounded by
//!            events                    MAX_TAGGED_INFLIGHT/PARKED_CAP
//!  sockets ──► reactor ── parked frames ──► job queue ── dispatchers
//!     ▲            ▲                                         │
//!     │            │ eventfd waker                           │ dispatch()
//!     └── write ◄──┴───────── completions ◄──────────────────┘
//! ```
//!
//! The reactor **never executes a request**: queries are cheap but a
//! `Flush` barrier blocks until the shard worker drains, and one
//! blocked reactor is a blocked server. Dispatchers run
//! [`crate::server::process_payload`] — the same decode/dispatch core
//! as the threaded back end — and push the encoded reply to a
//! completion list, waking the reactor to finish the write when the
//! socket is ready.
//!
//! Pipelining invariants (wire v4):
//!
//! * untagged frames on one connection execute strictly one at a time
//!   in arrival order, so completion order equals issue order and
//!   v1–v3 clients keep their request/reply contract with no reorder
//!   buffer;
//! * `Tagged` frames dispatch as capacity allows and may complete out
//!   of order — the correlation id, not position, pairs replies;
//! * all frames on a connection *begin* execution in arrival order
//!   (the parked queue is FIFO; a head that cannot dispatch blocks the
//!   frames behind it).
//!
//! Robustness (the PR 3 contract, under non-blocking I/O):
//!
//! * a started frame (first byte seen, frame incomplete) must finish
//!   within `request_timeout` — slow-loris dribblers are reaped by the
//!   deadline sweep without touching healthy connections;
//! * a peer that stops reading its replies hits the same deadline on
//!   the write side (plus a byte high-water mark that pauses reads);
//! * shutdown is graceful: stop accepting, let in-flight requests
//!   finish within a grace period, drain and join the dispatchers;
//! * the `server.accept` failpoint fires per accepted connection and
//!   `wire.write_frame` truncation applies to queued replies, so chaos
//!   schedules exercise this back end exactly like the threaded one.
//!
//! Tokens 0 and 1 are the listener and the waker; connection `key` in
//! the slab maps to token `key + 2`, and a per-connection generation
//! counter sheds completions that outlive their connection (slab keys
//! are reused).

use crate::metrics::service_metrics;
use crate::server::{process_payload, record_accept_fault, trigger_shutdown, ServeOptions, Shared};
use crate::wire::Response;
use chull_concurrent::failpoint::{self, sites, FaultAction};
use chull_net::{encode_frame_into, ByteBuf, FrameDecoder, Interest, Poller, Slab, Token};
use std::collections::VecDeque;
use std::io;
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Reactor tick: the deadline-sweep granularity (idle wait cap).
const TICK: Duration = Duration::from_millis(25);
/// Most tagged requests one connection may have executing at once;
/// frames beyond this park in arrival order.
const MAX_TAGGED_INFLIGHT: usize = 64;
/// Most parked (parsed, undispatched) frames per connection before the
/// reactor stops reading from it.
const PARKED_CAP: usize = 1024;
/// Pending reply bytes above which reads pause (peer not draining).
const WBUF_HIGH: usize = 1 << 20;
const TOKEN_LISTENER: Token = Token(0);
const TOKEN_WAKER: Token = Token(1);
const TOKEN_BASE: usize = 2;

/// Wakes the reactor out of `Poller::wait` (eventfd on Linux; the
/// portable poller relies on the bounded tick instead).
enum ReactorWaker {
    #[cfg(target_os = "linux")]
    Eventfd(chull_net::Waker),
    #[cfg_attr(target_os = "linux", allow(dead_code))]
    Tick,
}

impl ReactorWaker {
    fn wake(&self) {
        match self {
            #[cfg(target_os = "linux")]
            ReactorWaker::Eventfd(w) => {
                let _ = w.wake();
            }
            ReactorWaker::Tick => {}
        }
    }

    fn drain(&self) {
        match self {
            #[cfg(target_os = "linux")]
            ReactorWaker::Eventfd(w) => w.drain(),
            ReactorWaker::Tick => {}
        }
    }
}

/// One frame handed to the dispatcher pool.
struct Job {
    key: usize,
    gen: u64,
    payload: Vec<u8>,
}

/// A closable MPMC injector for the dispatcher pool (condvar-blocking
/// pop; the shard queues' lock-free `BoundedQueue` fits worker loops,
/// not a pool that must also wake on close).
struct JobQueue {
    q: Mutex<(VecDeque<Job>, bool)>,
    cv: Condvar,
}

impl JobQueue {
    fn new() -> JobQueue {
        JobQueue {
            q: Mutex::new((VecDeque::new(), false)),
            cv: Condvar::new(),
        }
    }

    fn push(&self, job: Job) {
        let mut g = self.q.lock().unwrap_or_else(|p| p.into_inner());
        g.0.push_back(job);
        drop(g);
        self.cv.notify_one();
    }

    /// Blocks for work; `None` once closed and drained.
    fn pop(&self) -> Option<Job> {
        let mut g = self.q.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if let Some(j) = g.0.pop_front() {
                return Some(j);
            }
            if g.1 {
                return None;
            }
            g = self.cv.wait(g).unwrap_or_else(|p| p.into_inner());
        }
    }

    fn close(&self) {
        self.q.lock().unwrap_or_else(|p| p.into_inner()).1 = true;
        self.cv.notify_all();
    }
}

/// A finished request on its way back to the reactor.
struct Completion {
    key: usize,
    gen: u64,
    /// The response was `Tagged` (frees a tagged in-flight slot rather
    /// than the connection's single untagged slot).
    tagged: bool,
    /// Encoded reply payload (framing added when queued to the socket).
    payload: Vec<u8>,
    shutdown_after: bool,
}

#[derive(Default)]
struct Completions(Mutex<Vec<Completion>>);

impl Completions {
    fn push(&self, c: Completion) {
        self.0.lock().unwrap_or_else(|p| p.into_inner()).push(c);
    }

    fn take(&self) -> Vec<Completion> {
        std::mem::take(&mut *self.0.lock().unwrap_or_else(|p| p.into_inner()))
    }
}

/// Per-connection reactor state.
struct Conn {
    stream: TcpStream,
    gen: u64,
    decoder: FrameDecoder,
    wbuf: ByteBuf,
    interest: Interest,
    /// Parsed frames waiting for a dispatch slot (FIFO).
    parked: VecDeque<Vec<u8>>,
    untagged_inflight: bool,
    tagged_inflight: usize,
    /// Deadline for completing the partially-received frame.
    frame_deadline: Option<Instant>,
    /// Deadline for draining `wbuf` (peer not reading).
    write_deadline: Option<Instant>,
    /// Peer half-closed (EOF read); finish in-flight work, then close.
    peer_closed: bool,
    /// Close as soon as `wbuf` drains (protocol fault or torn write).
    closing: bool,
    /// Reply written for a `Shutdown` request: once drained, trigger
    /// server shutdown and close.
    shutdown_after_drain: bool,
}

impl Conn {
    fn new(stream: TcpStream, gen: u64) -> Conn {
        Conn {
            stream,
            gen,
            decoder: FrameDecoder::new(crate::wire::MAX_FRAME),
            wbuf: ByteBuf::new(),
            interest: Interest::READABLE,
            parked: VecDeque::new(),
            untagged_inflight: false,
            tagged_inflight: 0,
            frame_deadline: None,
            write_deadline: None,
            peer_closed: false,
            closing: false,
            shutdown_after_drain: false,
        }
    }

    fn inflight(&self) -> usize {
        self.tagged_inflight + self.untagged_inflight as usize
    }

    /// Nothing left to read, execute, or write.
    fn drained(&self) -> bool {
        self.inflight() == 0 && self.parked.is_empty() && self.wbuf.is_empty()
    }
}

/// Start the reactor + dispatcher pool; returns the reactor thread
/// handle (the `accept` slot of `ServerHandle` — joining it joins the
/// dispatchers too).
pub(crate) fn spawn_reactor(
    listener: TcpListener,
    shared: Arc<Shared>,
    opts: &ServeOptions,
) -> io::Result<std::thread::JoinHandle<()>> {
    listener.set_nonblocking(true)?;
    let poller: Arc<dyn Poller> = Arc::from(chull_net::poller()?);
    poller.register(listener.as_raw_fd(), TOKEN_LISTENER, Interest::READABLE)?;
    #[cfg(target_os = "linux")]
    let waker = Arc::new(ReactorWaker::Eventfd(chull_net::Waker::new(
        &*poller,
        TOKEN_WAKER,
    )?));
    #[cfg(not(target_os = "linux"))]
    let waker = Arc::new(ReactorWaker::Tick);
    {
        let w = Arc::clone(&waker);
        let _ = shared.waker.set(Arc::new(move || w.wake()));
    }
    let jobs = Arc::new(JobQueue::new());
    let completions = Arc::new(Completions::default());
    let n_dispatchers = match opts.dispatchers {
        0 => std::thread::available_parallelism()
            .map(|p| p.get().min(4))
            .unwrap_or(2)
            .max(2),
        n => n,
    };
    let mut dispatchers = Vec::with_capacity(n_dispatchers);
    for i in 0..n_dispatchers {
        let jobs = Arc::clone(&jobs);
        let completions = Arc::clone(&completions);
        let shared = Arc::clone(&shared);
        let waker = Arc::clone(&waker);
        dispatchers.push(
            std::thread::Builder::new()
                .name(format!("hull-dispatch-{i}"))
                .spawn(move || dispatcher_loop(&jobs, &completions, &shared, &waker))?,
        );
    }
    let oneshot = opts.oneshot;
    let request_timeout = opts.request_timeout;
    std::thread::Builder::new()
        .name("hull-reactor".to_string())
        .spawn(move || {
            let mut reactor = Reactor {
                poller,
                listener,
                shared: Arc::clone(&shared),
                waker,
                jobs: Arc::clone(&jobs),
                completions,
                conns: Slab::new(),
                next_gen: 0,
                request_timeout,
                oneshot,
                oneshot_accepted: false,
                accepting: true,
                shutdown_grace: None,
            };
            // Contain reactor panics (e.g. an armed failpoint with a
            // panic spec at `server.accept`): record the fault, keep
            // the process alive, let shutdown drain the shards.
            let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| reactor.run()));
            match run {
                Ok(Ok(())) => {}
                Ok(Err(e)) => record_accept_fault(&shared, format!("reactor io error: {e}")),
                Err(p) => {
                    let msg = p
                        .downcast_ref::<&str>()
                        .map(|s| s.to_string())
                        .or_else(|| p.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "non-string panic payload".to_string());
                    record_accept_fault(&shared, format!("reactor panicked: {msg}"));
                }
            }
            jobs.close();
            for d in dispatchers {
                let _ = d.join();
            }
        })
}

fn dispatcher_loop(
    jobs: &JobQueue,
    completions: &Completions,
    shared: &Shared,
    waker: &ReactorWaker,
) {
    while let Some(job) = jobs.pop() {
        let (response, shutdown_after) = process_payload(&shared.service, &job.payload);
        let tagged = matches!(response, Response::Tagged { .. });
        completions.push(Completion {
            key: job.key,
            gen: job.gen,
            tagged,
            payload: response.encode(),
            shutdown_after,
        });
        waker.wake();
    }
}

struct Reactor {
    poller: Arc<dyn Poller>,
    listener: TcpListener,
    shared: Arc<Shared>,
    waker: Arc<ReactorWaker>,
    jobs: Arc<JobQueue>,
    completions: Arc<Completions>,
    conns: Slab<Conn>,
    next_gen: u64,
    request_timeout: Duration,
    oneshot: bool,
    oneshot_accepted: bool,
    accepting: bool,
    shutdown_grace: Option<Instant>,
}

impl Reactor {
    fn run(&mut self) -> io::Result<()> {
        let mut events = Vec::with_capacity(256);
        loop {
            if self.shared.shutdown.load(Ordering::SeqCst) && self.shutdown_grace.is_none() {
                self.begin_shutdown();
            }
            if self.shutdown_grace.is_some() {
                self.reap_idle_for_shutdown();
                let expired = self.shutdown_grace.is_some_and(|g| Instant::now() >= g);
                if self.conns.is_empty() || expired {
                    break;
                }
            }
            events.clear();
            self.poller.wait(&mut events, Some(TICK))?;
            if !events.is_empty() {
                service_metrics().readiness_wakeups.incr();
            }
            for ev in events.drain(..) {
                match ev.token {
                    TOKEN_LISTENER => self.accept_ready(),
                    TOKEN_WAKER => self.waker.drain(),
                    Token(t) => {
                        let key = t - TOKEN_BASE;
                        if ev.error {
                            self.close_conn(key);
                            continue;
                        }
                        if ev.readable || ev.hangup {
                            self.on_readable(key);
                        }
                        if ev.writable {
                            self.flush_writes(key);
                            self.update_interest(key);
                        }
                    }
                }
            }
            self.drain_completions();
            self.sweep_deadlines();
        }
        // Shutdown: drop whatever is left (grace expired or none open).
        for key in self.conns.keys() {
            self.close_conn(key);
        }
        Ok(())
    }

    fn begin_shutdown(&mut self) {
        self.shutdown_grace = Some(Instant::now() + self.request_timeout);
        self.stop_accepting();
    }

    fn stop_accepting(&mut self) {
        if self.accepting {
            let _ = self.poller.deregister(self.listener.as_raw_fd());
            self.accepting = false;
        }
    }

    /// During shutdown, close every connection with no work in flight;
    /// ones mid-request get the grace period to finish.
    fn reap_idle_for_shutdown(&mut self) {
        for key in self.conns.keys() {
            let drained = self.conns.get(key).is_some_and(Conn::drained);
            if drained {
                self.close_conn(key);
            }
        }
    }

    fn accept_ready(&mut self) {
        while self.accepting {
            let stream = match self.listener.accept() {
                Ok((s, _)) => s,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            };
            // Failpoint `server.accept`: a chaos schedule may stall (or
            // kill) the accept path, same site as the threaded loop.
            let _ = failpoint::eval(sites::SERVER_ACCEPT);
            if stream.set_nonblocking(true).is_err() {
                continue;
            }
            let _ = stream.set_nodelay(true);
            let m = service_metrics();
            m.accepts.incr();
            m.connections_accepted.incr();
            m.connections_active.add(1);
            self.next_gen += 1;
            let fd = stream.as_raw_fd();
            let key = self.conns.insert(Conn::new(stream, self.next_gen));
            if self
                .poller
                .register(fd, Token(key + TOKEN_BASE), Interest::READABLE)
                .is_err()
            {
                self.conns.remove(key);
                m.connections_closed.incr();
                m.connections_active.add(-1);
                continue;
            }
            if self.oneshot {
                // Serve exactly one connection; shut down when it goes.
                self.oneshot_accepted = true;
                self.stop_accepting();
                break;
            }
        }
    }

    fn on_readable(&mut self, key: usize) {
        let deadline_base = Instant::now() + self.request_timeout;
        let outcome = {
            let Some(conn) = self.conns.get_mut(key) else {
                return;
            };
            // Pull everything the socket has (level triggering
            // re-delivers if the parked cap makes us stop early).
            let io_ok = loop {
                match conn.decoder.read_from(&mut conn.stream) {
                    Ok(0) => {
                        conn.peer_closed = true;
                        break true;
                    }
                    Ok(_) => {
                        if conn.parked.len() >= PARKED_CAP {
                            break true;
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break true,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => break false,
                }
            };
            if !io_ok {
                Err(())
            } else {
                // Parse complete frames into the parked queue (bounded).
                let mut partial = false;
                let parse_ok = loop {
                    if conn.parked.len() >= PARKED_CAP {
                        break true;
                    }
                    match conn.decoder.next_frame() {
                        Ok(Some(frame)) => conn.parked.push_back(frame),
                        Ok(None) => {
                            partial = conn.decoder.has_partial();
                            break true;
                        }
                        // Oversized length prefix: protocol-broken peer.
                        Err(_) => break false,
                    }
                };
                if !parse_ok || (conn.peer_closed && partial) {
                    // A torn frame can never complete once the peer
                    // half-closed; an oversized one never should.
                    Err(())
                } else {
                    if partial {
                        conn.frame_deadline.get_or_insert(deadline_base);
                    } else {
                        conn.frame_deadline = None;
                    }
                    Ok(())
                }
            }
        };
        if outcome.is_err() {
            self.close_conn(key);
            return;
        }
        self.dispatch_parked(key);
        if self
            .conns
            .get(key)
            .is_some_and(|c| c.peer_closed && c.drained())
        {
            self.close_conn(key);
            return;
        }
        self.update_interest(key);
    }

    /// Move parked frames to the dispatcher pool, FIFO, while capacity
    /// allows: tagged frames up to [`MAX_TAGGED_INFLIGHT`] concurrent,
    /// untagged strictly one at a time (ordering invariant).
    fn dispatch_parked(&mut self, key: usize) {
        let Some(conn) = self.conns.get_mut(key) else {
            return;
        };
        while let Some(front) = conn.parked.front() {
            let tagged = front.first() == Some(&0x0F);
            if tagged {
                if conn.tagged_inflight >= MAX_TAGGED_INFLIGHT {
                    break;
                }
                conn.tagged_inflight += 1;
            } else {
                if conn.untagged_inflight {
                    break;
                }
                conn.untagged_inflight = true;
            }
            let payload = conn.parked.pop_front().expect("front checked");
            self.jobs.push(Job {
                key,
                gen: conn.gen,
                payload,
            });
        }
    }

    fn drain_completions(&mut self) {
        for c in self.completions.take() {
            // Generation check: the slot may have been freed and reused
            // since this job was dispatched; a stale reply must not
            // reach the new tenant.
            let Some(conn) = self.conns.get_mut(c.key) else {
                continue;
            };
            if conn.gen != c.gen {
                continue;
            }
            if c.tagged {
                conn.tagged_inflight -= 1;
            } else {
                conn.untagged_inflight = false;
            }
            // Failpoint `wire.write_frame`: a chaos schedule may tear
            // the reply mid-frame — queue the prefix and drop the
            // connection once it flushes, exactly as the threaded
            // back end's torn blocking write behaves.
            if let FaultAction::TruncateWrite(n) = failpoint::eval(sites::WIRE_WRITE_FRAME) {
                let mut full = Vec::with_capacity(4 + c.payload.len());
                full.extend_from_slice(&(c.payload.len() as u32).to_le_bytes());
                full.extend_from_slice(&c.payload);
                let cut = n.min(full.len());
                conn.wbuf.extend(&full[..cut]);
                conn.closing = true;
            } else {
                encode_frame_into(&mut conn.wbuf, &c.payload);
            }
            if c.shutdown_after {
                conn.shutdown_after_drain = true;
            }
            self.dispatch_parked(c.key);
            self.flush_writes(c.key);
            self.update_interest(c.key);
        }
    }

    fn flush_writes(&mut self, key: usize) {
        enum After {
            Keep,
            Close,
            ShutdownAndClose,
        }
        let deadline_base = Instant::now() + self.request_timeout;
        let after = {
            let Some(conn) = self.conns.get_mut(key) else {
                return;
            };
            let io_ok = loop {
                if conn.wbuf.is_empty() {
                    break true;
                }
                match conn.wbuf.write_to(&mut conn.stream) {
                    Ok(_) => {}
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break true,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => break false,
                }
            };
            if !io_ok {
                After::Close
            } else if conn.wbuf.is_empty() {
                conn.write_deadline = None;
                if conn.shutdown_after_drain {
                    After::ShutdownAndClose
                } else if conn.closing || (conn.peer_closed && conn.drained()) {
                    After::Close
                } else {
                    After::Keep
                }
            } else {
                conn.write_deadline.get_or_insert(deadline_base);
                After::Keep
            }
        };
        match after {
            After::Keep => {}
            After::Close => self.close_conn(key),
            After::ShutdownAndClose => {
                trigger_shutdown(&self.shared);
                self.close_conn(key);
            }
        }
    }

    /// Reconcile the poller registration with what the connection can
    /// make progress on: reads pause under backpressure (parked queue
    /// or reply bytes over the high-water mark), writes only while
    /// bytes are pending.
    fn update_interest(&mut self, key: usize) {
        let Some(conn) = self.conns.get_mut(key) else {
            return;
        };
        let paused = conn.parked.len() >= PARKED_CAP || conn.wbuf.len() > WBUF_HIGH;
        let want = Interest {
            readable: !paused && !conn.peer_closed,
            writable: !conn.wbuf.is_empty(),
        };
        if want != conn.interest
            && self
                .poller
                .reregister(conn.stream.as_raw_fd(), Token(key + TOKEN_BASE), want)
                .is_ok()
        {
            conn.interest = want;
        }
    }

    fn sweep_deadlines(&mut self) {
        let now = Instant::now();
        for key in self.conns.keys() {
            let expired = self.conns.get(key).is_some_and(|c| {
                c.frame_deadline.is_some_and(|d| now >= d)
                    || c.write_deadline.is_some_and(|d| now >= d)
            });
            if expired {
                self.close_conn(key);
            }
        }
    }

    fn close_conn(&mut self, key: usize) {
        let Some(conn) = self.conns.remove(key) else {
            return;
        };
        let _ = self.poller.deregister(conn.stream.as_raw_fd());
        let m = service_metrics();
        m.connections_closed.incr();
        m.connections_active.add(-1);
        drop(conn);
        if self.oneshot && self.oneshot_accepted && self.conns.is_empty() {
            trigger_shutdown(&self.shared);
        }
    }
}
