//! End-to-end telemetry exposition: a live server scraped two ways.
//!
//! One server, one workload; then the Prometheus text is fetched both
//! in-band (wire `Metrics` op) and out-of-band (plain HTTP
//! `GET /metrics`). The two scrapes must expose the same metric
//! families, every layer the ISSUE demands must be present (queue,
//! shard pipeline, journal/WAL, kernel, depth, per-op request series),
//! and the dependence-depth histogram must be non-empty and consistent
//! with the `Stats` JSON's `dep_depth` gauge (Theorem 4.2's observable:
//! depth stays logarithmic, so the histogram max is far below n).

use convex_hull_suite::geometry::{generators, PointSet};
use convex_hull_suite::service::{serve, HullClient, MutationBatch, ServeOptions, ServiceConfig};
use std::collections::BTreeSet;
use std::io::{Read, Write};
use std::net::TcpStream;

fn serve_opts() -> ServeOptions {
    ServeOptions {
        addr: "127.0.0.1:0".to_string(),
        config: ServiceConfig {
            dim: 2,
            shards: 2,
            queue_capacity: 256,
            max_batch: 32,
            workers: 2,
            wal_dir: None,
            bulk_threshold: 0,
            ..Default::default()
        },
        metrics_addr: Some("127.0.0.1:0".to_string()),
        ..Default::default()
    }
}

fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
    let mut s = TcpStream::connect(addr).unwrap();
    write!(s, "GET {path} HTTP/1.0\r\nHost: test\r\n\r\n").unwrap();
    let mut out = String::new();
    s.read_to_string(&mut out).unwrap();
    out
}

/// Metric family names: every non-comment sample line's bare name with
/// histogram-part suffixes stripped.
fn families(text: &str) -> BTreeSet<String> {
    text.lines()
        .filter(|l| !l.starts_with('#') && !l.trim().is_empty())
        .filter_map(|l| l.split([' ', '{']).next())
        .map(|n| {
            n.trim_end_matches("_bucket")
                .trim_end_matches("_sum")
                .trim_end_matches("_count")
                .to_string()
        })
        .collect()
}

/// Sum of a histogram family's `_count` samples across label sets.
fn hist_count(text: &str, family: &str) -> u64 {
    let prefix = format!("{family}_count");
    text.lines()
        .filter(|l| l.starts_with(&prefix))
        .filter_map(|l| l.rsplit(' ').next())
        .filter_map(|v| v.parse::<u64>().ok())
        .sum()
}

fn json_field(json: &str, key: &str) -> u64 {
    let pat = format!("\"{key}\":");
    let at = json.find(&pat).unwrap_or_else(|| panic!("{key} in {json}")) + pat.len();
    json[at..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .unwrap()
}

#[test]
fn wire_and_http_scrapes_agree_and_cover_every_layer() {
    let mut server = serve(serve_opts()).unwrap();
    let maddr = server.metrics_addr().expect("metrics listener requested");
    let mut c = HullClient::builder(server.local_addr().to_string())
        .connect()
        .unwrap();

    // A workload big enough to exercise queue coalescing, batching, and
    // a real history graph (depth > 1) on both shards.
    let pts = PointSet::from_points2(&generators::disk_2d(120, 1 << 18, 77));
    for (i, p) in pts.iter().enumerate() {
        let shard = (i % 2) as u16;
        c.mutate(shard, MutationBatch::new().insert(p.to_vec()))
            .unwrap();
    }
    c.flush(0).unwrap();
    c.flush(1).unwrap();
    assert_eq!(c.contains(0, &[0, 0]).unwrap(), Some(true));
    assert!(c.visible(1, &[1 << 19, 0]).unwrap().is_some());

    // Exercise the v5 replication surface so its op series and gauges
    // carry real values: ship shard 0's first unit, ack it applied.
    let (index, total, dim, flat) = c.repl_fetch(0, 0).unwrap();
    assert_eq!((index, dim), (0, 2));
    assert!(total >= 1 && !flat.is_empty(), "nothing shipped");
    let lag = c.repl_ack(0, 1).unwrap();
    assert_eq!(lag, total - 1, "ack through unit 0 leaves total-1 lag");

    let wire_text = c.metrics().unwrap();
    let http_reply = http_get(maddr, "/metrics");
    assert!(http_reply.starts_with("HTTP/1.0 200"), "{http_reply}");
    assert!(
        http_reply.contains("text/plain; version=0.0.4"),
        "{http_reply}"
    );
    let http_text = http_reply.split("\r\n\r\n").nth(1).unwrap();

    // Same registry, same families, whichever door you come in through.
    let wf = families(&wire_text);
    let hf = families(http_text);
    assert_eq!(wf, hf, "wire and HTTP scrapes expose different families");

    // Every instrumented layer shows up.
    for family in [
        "chull_queue_push_total",
        "chull_queue_pop_batch_items",
        "chull_service_inserts_enqueued_total",
        "chull_shard_batches_total",
        "chull_shard_batch_inserts",
        "chull_shard_batch_apply_us",
        "chull_journal_append_us",
        "chull_wal_sync_us",
        "chull_shard_queue_depth",
        "chull_shard_dep_depth",
        "chull_shard_epoch",
        "chull_shard_journal_len",
        "chull_kernel_visibility_tests_total",
        "chull_insert_dep_depth",
        "chull_insert_visited_nodes",
        "chull_server_requests_total",
        "chull_server_request_us",
        "chull_server_accepts_total",
        "chull_service_flushes_total",
        // Replication layer (PR 8): shipped/applied counters, the
        // resubscribe/failover counters, and the per-shard lag gauges.
        "chull_replica_units_shipped_total",
        "chull_replica_units_applied_total",
        "chull_replica_resubscribes_total",
        "chull_replica_failovers_total",
        "chull_replica_lag_batches",
        "chull_replica_last_acked",
    ] {
        assert!(wf.contains(family), "family {family} missing:\n{wire_text}");
    }

    // The ack above landed in the per-shard replication gauges.
    let acked_needle = "chull_replica_last_acked{shard=\"0\"} 1";
    assert!(
        wire_text.contains(acked_needle),
        "wire scrape lacks `{acked_needle}`:\n{wire_text}"
    );

    // The depth histogram is non-empty: one record per applied insert
    // past the seed simplex, on the online engine label.
    let depth_records = hist_count(&wire_text, "chull_insert_dep_depth");
    assert!(depth_records > 0, "empty depth histogram:\n{wire_text}");

    // Consistency with the Stats op: the per-shard dep_depth gauge in
    // the JSON equals the chull_shard_dep_depth gauge at quiescence.
    for shard in [0u16, 1u16] {
        let stats = c.stats(Some(shard)).unwrap();
        let dep = json_field(&stats, "dep_depth");
        assert!(dep >= 1, "flushed live hull must have depth >= 1: {stats}");
        let needle = format!("chull_shard_dep_depth{{shard=\"{shard}\"}} {dep}");
        assert!(
            wire_text.contains(&needle),
            "wire scrape lacks `{needle}`:\n{wire_text}"
        );
        // Theorem 4.2 sanity: depth is logarithmic, nowhere near n.
        assert!(dep < 60, "dep_depth {dep} not logarithmic-ish");
    }

    // Per-op request accounting covered the ops this test issued.
    for op in [
        "insert",
        "flush",
        "contains",
        "visible",
        "stats",
        "metrics",
        "repl_subscribe",
        "repl_ack",
    ] {
        let needle = format!("chull_server_requests_total{{op=\"{op}\"}}");
        assert!(wire_text.contains(&needle), "missing {needle}");
    }

    server.shutdown();
}
