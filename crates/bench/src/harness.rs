//! A small self-contained benchmark harness (the external `criterion`
//! crate is unavailable in this build environment).
//!
//! Usage mirrors the shape of the old criterion benches: create a
//! [`Bench`], register closures under names, then [`Bench::report`] prints
//! a table and [`Bench::write_json`] records a machine-readable snapshot.
//!
//! Timing model: one warm-up call, then the per-iteration cost is
//! calibrated so each sample batch runs for roughly
//! [`Bench::target_sample_time`]; the reported figure is the **median**
//! ns/iter over all sample batches, which is robust to scheduler noise.

pub use std::hint::black_box;
use std::time::Instant;

/// One benchmark's measured result.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark name (unique within a run).
    pub name: String,
    /// Median nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Iterations per sample batch (calibrated).
    pub iters: u64,
    /// Number of sample batches measured.
    pub samples: usize,
}

/// A benchmark runner collecting [`BenchResult`]s.
pub struct Bench {
    results: Vec<BenchResult>,
    samples: usize,
    target_sample_secs: f64,
}

impl Default for Bench {
    fn default() -> Self {
        Self::new()
    }
}

impl Bench {
    /// A runner with the default 11 samples of ~20ms each.
    pub fn new() -> Self {
        Bench {
            results: Vec::new(),
            samples: 11,
            target_sample_secs: 0.02,
        }
    }

    /// Set the number of sample batches (odd keeps the median exact).
    pub fn samples(mut self, n: usize) -> Self {
        self.samples = n.max(3);
        self
    }

    /// Set the target wall-clock length of one sample batch, in seconds.
    pub fn target_sample_time(mut self, secs: f64) -> Self {
        self.target_sample_secs = secs;
        self
    }

    /// Measure `f`, recording the median ns/iter under `name`.
    pub fn bench<R, F: FnMut() -> R>(&mut self, name: &str, mut f: F) {
        // Warm-up and calibration: grow the batch until it is long enough
        // to time reliably, then scale to the target sample time.
        let mut iters = 1u64;
        let per_iter = loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let dt = t0.elapsed().as_secs_f64();
            if dt > 1e-3 || iters >= 1 << 30 {
                break dt / iters as f64;
            }
            iters *= 8;
        };
        let batch = ((self.target_sample_secs / per_iter.max(1e-12)) as u64).max(1);
        let mut times: Vec<f64> = (0..self.samples)
            .map(|_| {
                let t0 = Instant::now();
                for _ in 0..batch {
                    black_box(f());
                }
                t0.elapsed().as_secs_f64() / batch as f64
            })
            .collect();
        times.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = times[times.len() / 2];
        let result = BenchResult {
            name: name.to_string(),
            ns_per_iter: median * 1e9,
            iters: batch,
            samples: self.samples,
        };
        println!(
            "{:<44} {:>14.1} ns/iter   ({} iters x {} samples)",
            result.name, result.ns_per_iter, result.iters, result.samples
        );
        self.results.push(result);
    }

    /// All results measured so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Print a summary table to stdout.
    pub fn report(&self) {
        println!("\n== {} benchmarks ==", self.results.len());
        for r in &self.results {
            println!("{:<44} {:>14.1} ns/iter", r.name, r.ns_per_iter);
        }
    }

    /// Write the results as a JSON array to `path`.
    pub fn write_json(&self, path: &str) -> std::io::Result<()> {
        let mut out = String::from("[\n");
        for (i, r) in self.results.iter().enumerate() {
            out.push_str(&format!(
                "  {{\"name\": \"{}\", \"ns_per_iter\": {:.2}, \"iters\": {}, \"samples\": {}}}{}\n",
                r.name,
                r.ns_per_iter,
                r.iters,
                r.samples,
                if i + 1 < self.results.len() { "," } else { "" }
            ));
        }
        out.push_str("]\n");
        std::fs::write(path, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_measures_and_records() {
        let mut b = Bench::new().samples(3).target_sample_time(0.001);
        b.bench("noop_sum", || (0..100u64).sum::<u64>());
        assert_eq!(b.results().len(), 1);
        assert!(b.results()[0].ns_per_iter > 0.0);
    }

    #[test]
    fn json_shape() {
        let mut b = Bench::new().samples(3).target_sample_time(0.001);
        b.bench("a", || 1 + 1);
        let dir = std::env::temp_dir().join("chull_bench_test.json");
        let path = dir.to_str().unwrap();
        b.write_json(path).unwrap();
        let s = std::fs::read_to_string(path).unwrap();
        assert!(s.contains("\"name\": \"a\""));
        std::fs::remove_file(path).ok();
    }
}
