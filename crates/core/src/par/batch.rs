//! Batch insertion engine: Algorithm 3's `ProcessRidge` recursion run
//! against an arbitrary **current hull** instead of the initial simplex.
//!
//! This is Theorem 5.5 on the serving path: a coalesced queue batch is
//! inserted as one parallel step. The state of Algorithm 2 after any
//! insert prefix is exactly "alive facets + conflict lists over the
//! remaining points", so seeding the recursion with the current hull's
//! alive facets — each given a conflict list filtered from the batch
//! points — and spawning `ProcessRidge` on every current ridge continues
//! the sequential process: the batch performs precisely the facet
//! creations that inserting its points one at a time (in id order) would,
//! independent of schedule or worker count.
//!
//! The ridge multimap is the growable CAS table
//! ([`chull_concurrent::RidgeMapCas`]) by default, or the `TestAndSet`
//! variant under the `tas-ridge-map` feature; both degrade to a locked
//! overflow tier when the sizing estimate is short, because a
//! panic-on-full map inside the shard supervisor's recovery replay would
//! crash-loop the service.
//!
//! Results come back in **canonical `(creator, verts)` order**. Conflict
//! lists only ever contain points later than a facet's creator, so a
//! facet's creator is strictly smaller than its children's creators —
//! the canonical order is a topological order of the support graph, and
//! `OnlineHull` can assign final facet ids in one pass. That ordering is
//! what makes the batch path deterministic across worker counts (and
//! therefore replayable for crash recovery).

use super::{ParFacet, Shared, ALIVE};
use crate::context::HullContext;
use crate::facet::{Facet, FacetVerts, RidgeKey};
use chull_concurrent::pool;
#[cfg(not(feature = "tas-ridge-map"))]
use chull_concurrent::RidgeMapCas;
#[cfg(feature = "tas-ridge-map")]
use chull_concurrent::RidgeMapTas;
use chull_concurrent::{AtomicMax, ConcurrentArena, StripedCounter};
use chull_geometry::{Hyperplane, KernelCounts, Sign};
use std::sync::atomic::{AtomicBool, Ordering};

/// Ridge multimap used by the batch engine (E12-style ablation: the
/// `tas-ridge-map` feature swaps in the `TestAndSet`-only table).
#[cfg(not(feature = "tas-ridge-map"))]
type BatchMap = RidgeMapCas<RidgeKey>;
#[cfg(feature = "tas-ridge-map")]
type BatchMap = RidgeMapTas<RidgeKey>;

/// One facet created by a batch run, in canonical `(creator, verts)` order.
pub(crate) struct CreatedFacet {
    pub verts: FacetVerts,
    pub visible_sign: Sign,
    pub plane: Hyperplane,
    /// The batch point whose insertion created this facet.
    pub creator: u32,
    /// Support pair `{t1, t2}`: values `< seed_count` are seed slots
    /// (pre-batch facets); `seed_count + i` is the `i`-th created facet in
    /// canonical order (always earlier than this one — see module docs).
    pub parents: [u32; 2],
    /// Whether a later batch point killed this facet within the batch.
    pub dead: bool,
}

/// Outcome of one parallel batch run, ready for `OnlineHull` integration.
pub(crate) struct BatchRun {
    /// Seed slots (indices into the caller's alive-facet list) that died.
    pub dead_seeds: Vec<u32>,
    /// Created facets in canonical order.
    pub created: Vec<CreatedFacet>,
    /// Staged-kernel counters for every visibility test performed
    /// (seeding plus recursion), schedule-independent.
    pub counts: KernelCounts,
    /// Maximum `ProcessRidge` recursion depth (Theorem 5.3).
    pub recursion_depth: u64,
    /// Ridges buried / facets replaced during the recursion.
    pub buried: u64,
    pub replaced: u64,
    /// Task-busy nanoseconds accumulated while telemetry is armed
    /// (0 when disarmed); busy / wall ≈ realized parallelism.
    pub busy_ns: u64,
}

/// Run the batch recursion. `seed_verts` are the current alive facets (in
/// a caller-chosen slot order), `ridges` the current hull's ridges as
/// `(slot, key, slot)` pairs, `batch_ids` the new points' ids sorted
/// ascending (already appended to the context's point set).
pub(crate) fn run_batch(
    ctx: HullContext<'_>,
    seed_verts: &[FacetVerts],
    ridges: &[(u32, RidgeKey, u32)],
    batch_ids: &[u32],
    threads: usize,
) -> BatchRun {
    let seed_count = seed_verts.len();
    let dim = ctx.dim;
    let shared = Shared {
        ctx,
        arena: ConcurrentArena::new(),
        map: BatchMap::growable_with_capacity(batch_ids.len() * dim * 4 + ridges.len() + 1024),
        tests: StripedCounter::new(),
        filter_hits: StripedCounter::new(),
        i128_fallbacks: StripedCounter::new(),
        bigint_fallbacks: StripedCounter::new(),
        buried: StripedCounter::new(),
        replaced: StripedCounter::new(),
        max_depth: AtomicMax::new(),
        busy_ns: StripedCounter::new(),
        trace: None,
    };

    // Seed conflict lists in parallel: each alive facet filters the batch
    // points through the same `make_facet` the recursion uses, so the
    // counting semantics are uniform under both kernel features.
    let mut slots: Vec<Option<(Facet, KernelCounts)>> = (0..seed_count).map(|_| None).collect();
    let chunk = seed_count / (threads.max(1) * 8) + 1;
    pool::scope_with_threads(threads, |s| {
        for (chunk_verts, chunk_slots) in seed_verts.chunks(chunk).zip(slots.chunks_mut(chunk)) {
            let shared = &shared;
            s.spawn(move |_| {
                let armed = chull_obs::armed();
                let start = armed.then(std::time::Instant::now);
                for (v, slot) in chunk_verts.iter().zip(chunk_slots.iter_mut()) {
                    *slot = Some(shared.ctx.make_facet(*v, batch_ids, u32::MAX));
                }
                if let Some(start) = start {
                    shared.busy_ns.add(start.elapsed().as_nanos() as u64);
                }
            });
        }
    });
    for (facet, counts) in slots.into_iter().map(|x| x.expect("seed task ran")) {
        shared.add_counts(&counts);
        shared.arena.push(ParFacet {
            facet,
            dead: AtomicBool::new(ALIVE),
            creator: u32::MAX,
            parents: [u32::MAX; 2],
        });
    }

    // Spawn `ProcessRidge` for every current ridge. A ridge with no
    // conflicts on either side is skipped: line 9 would finalize it
    // immediately, and a conflict-free facet can never die (burying needs
    // equal non-MAX pivots; replacement targets the earlier pivot's side).
    pool::scope_with_threads(threads, |s| {
        for &(a, r, b) in ridges {
            let (fa, fb) = (shared.arena.get(a), shared.arena.get(b));
            if fa.facet.conflicts.is_empty() && fb.facet.conflicts.is_empty() {
                continue;
            }
            let shared = &shared;
            s.spawn(move |s| shared.process_ridge(s, a, r, b, 1));
        }
    });

    // Quiesced: order created facets canonically and remap parent ids.
    let total = shared.arena.len();
    let mut order: Vec<u32> = (seed_count as u32..total as u32).collect();
    order.sort_unstable_by_key(|&id| {
        let pf = shared.arena.get(id);
        (pf.creator, pf.facet.verts)
    });
    let mut pos = vec![0u32; total - seed_count];
    for (ci, &aid) in order.iter().enumerate() {
        pos[aid as usize - seed_count] = ci as u32;
    }
    let remap = |p: u32| -> u32 {
        if (p as usize) < seed_count {
            p
        } else {
            seed_count as u32 + pos[p as usize - seed_count]
        }
    };
    let created: Vec<CreatedFacet> = order
        .iter()
        .map(|&aid| {
            let pf = shared.arena.get(aid);
            debug_assert!(
                pf.dead.load(Ordering::Relaxed) || pf.facet.conflicts.is_empty(),
                "alive facet with unresolved conflicts"
            );
            CreatedFacet {
                verts: pf.facet.verts,
                visible_sign: pf.facet.visible_sign,
                plane: pf.facet.plane.clone(),
                creator: pf.creator,
                parents: [remap(pf.parents[0]), remap(pf.parents[1])],
                dead: pf.dead.load(Ordering::Relaxed),
            }
        })
        .collect();
    let dead_seeds: Vec<u32> = (0..seed_count as u32)
        .filter(|&slot| shared.arena.get(slot).dead.load(Ordering::Relaxed))
        .collect();
    let counts = KernelCounts {
        tests: shared.tests.sum(),
        filter_hits: shared.filter_hits.sum(),
        i128_fallbacks: shared.i128_fallbacks.sum(),
        bigint_fallbacks: shared.bigint_fallbacks.sum(),
        // Conflict-list batches never descend the history graph.
        descent_steps: 0,
    };
    BatchRun {
        dead_seeds,
        created,
        counts,
        recursion_depth: shared.max_depth.get(),
        buried: shared.buried.sum(),
        replaced: shared.replaced.sum(),
        busy_ns: shared.busy_ns.sum(),
    }
}
