//! Benchmarks of the instrumentation paths themselves: the rounds runner
//! (synchronous span measurement) vs the async scheduler.

use chull_bench::harness::Bench;
use chull_bench::prepared_disk_2d;
use chull_core::par::rounds::rounds_hull;
use chull_core::par::{parallel_hull, ParOptions};

fn main() {
    let mut b = Bench::new().samples(5).target_sample_time(0.2);
    let n = 50_000;
    let pts = prepared_disk_2d(n, 17);
    b.bench(&format!("depth_measurement/rounds_runner/{n}"), || {
        rounds_hull(&pts, false)
    });
    b.bench(&format!("depth_measurement/async_scheduler/{n}"), || {
        parallel_hull(&pts, ParOptions::default())
    });
    b.report();
}
