//! The ridge-based formulation of convex hull (Section 7, first
//! paragraph), instantiated in 2D.
//!
//! Configurations are hull *ridges with their two incident facets*: in 2D a
//! ridge is a hull vertex `m` and its two incident edges `(l, m)` and
//! `(m, r)` — the "corner" at `m`. The defining set is `{l, m, r}`
//! (`d + 1 = 3` objects, multiplicity `(d+1 choose d-1) = 3`), and the
//! conflict set is everything visible from either incident edge.
//!
//! Section 7 asserts 2-support: for a non-ridge defining point (`l` or `r`)
//! the support is the single corner at `m` in `Y \ {x}`; for the ridge
//! point `m` itself, the two corners at `l` and `r` in `Y \ {x}`.
//! This formulation has the property that adding a configuration deletes
//! its entire support set, which makes the Clarkson–Shor accounting direct.

use crate::space::ConfigurationSpace;
use chull_geometry::predicates::orient2d;
use chull_geometry::{Point2i, Sign};

/// A hull corner: vertex `m` with counterclockwise neighbors `prev -> m ->
/// next`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Corner2 {
    /// Counterclockwise predecessor of `m` on the hull.
    pub prev: usize,
    /// The ridge vertex.
    pub m: usize,
    /// Counterclockwise successor of `m` on the hull.
    pub next: usize,
}

/// The 2D ridge (corner) configuration space over a fixed point set.
pub struct Ridge2dSpace {
    points: Vec<Point2i>,
}

impl Ridge2dSpace {
    /// Build the space; general position assumed.
    pub fn new(points: Vec<Point2i>) -> Ridge2dSpace {
        assert!(points.len() >= 3);
        Ridge2dSpace { points }
    }

    /// Counterclockwise hull of `objs` (object indices).
    fn hull_ccw(&self, objs: &[usize]) -> Vec<usize> {
        let mut idx = objs.to_vec();
        idx.sort_unstable_by_key(|&i| self.points[i]);
        idx.dedup();
        if idx.len() < 3 {
            return idx;
        }
        let p = |i: usize| self.points[i];
        let mut lower: Vec<usize> = Vec::new();
        for &i in &idx {
            while lower.len() >= 2
                && orient2d(p(lower[lower.len() - 2]), p(lower[lower.len() - 1]), p(i))
                    != Sign::Positive
            {
                lower.pop();
            }
            lower.push(i);
        }
        let mut upper: Vec<usize> = Vec::new();
        for &i in idx.iter().rev() {
            while upper.len() >= 2
                && orient2d(p(upper[upper.len() - 2]), p(upper[upper.len() - 1]), p(i))
                    != Sign::Positive
            {
                upper.pop();
            }
            upper.push(i);
        }
        lower.pop();
        upper.pop();
        lower.extend(upper);
        lower
    }

    fn corner_at(&self, hull: &[usize], m: usize) -> Corner2 {
        let pos = hull
            .iter()
            .position(|&v| v == m)
            .expect("vertex not on hull");
        let k = hull.len();
        Corner2 {
            prev: hull[(pos + k - 1) % k],
            m,
            next: hull[(pos + 1) % k],
        }
    }
}

impl ConfigurationSpace for Ridge2dSpace {
    type Config = Corner2;

    fn num_objects(&self) -> usize {
        self.points.len()
    }
    fn max_degree(&self) -> usize {
        3 // d + 1
    }
    fn multiplicity(&self) -> usize {
        3 // (d+1 choose d-1)
    }
    fn base_size(&self) -> usize {
        3
    }
    fn support_bound(&self) -> usize {
        2
    }

    fn defining_set(&self, pi: &Corner2) -> Vec<usize> {
        vec![pi.prev, pi.m, pi.next]
    }

    fn conflicts(&self, pi: &Corner2, x: usize) -> bool {
        if x == pi.prev || x == pi.m || x == pi.next {
            return false;
        }
        // Visible from either incident edge (strictly right of a ccw edge).
        let p = |i: usize| self.points[i];
        orient2d(p(pi.prev), p(pi.m), p(x)) == Sign::Negative
            || orient2d(p(pi.m), p(pi.next), p(x)) == Sign::Negative
    }

    fn active_configs(&self, objs: &[usize]) -> Vec<Corner2> {
        let hull = self.hull_ccw(objs);
        if hull.len() < 3 {
            return Vec::new();
        }
        let k = hull.len();
        (0..k)
            .map(|i| Corner2 {
                prev: hull[(i + k - 1) % k],
                m: hull[i],
                next: hull[(i + 1) % k],
            })
            .collect()
    }

    fn support_set(&self, objs: &[usize], pi: &Corner2, x: usize) -> Vec<Corner2> {
        let rest: Vec<usize> = objs.iter().copied().filter(|&o| o != x).collect();
        let hull = self.hull_ccw(&rest);
        if x == pi.m {
            // The ridge point: supported by the corners at both neighbors.
            vec![
                self.corner_at(&hull, pi.prev),
                self.corner_at(&hull, pi.next),
            ]
        } else {
            // A facet point: supported by the corner at m alone.
            vec![self.corner_at(&hull, pi.m)]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::depgraph::build_dep_graph;
    use crate::space::{check_k_support_along_order, check_support, SupportCheck};
    use chull_geometry::generators;

    #[test]
    fn active_corners_of_square() {
        let s = Ridge2dSpace::new(vec![
            Point2i::new(0, 0),
            Point2i::new(10, 0),
            Point2i::new(10, 10),
            Point2i::new(0, 10),
            Point2i::new(5, 5),
        ]);
        let corners = s.active_configs(&[0, 1, 2, 3, 4]);
        assert_eq!(corners.len(), 4);
        assert!(corners.iter().all(|c| c.m != 4));
        // Consecutive neighbors are consistent with ccw order.
        for c in &corners {
            assert_eq!(
                orient2d(s.points[c.prev], s.points[c.m], s.points[c.next]),
                Sign::Positive
            );
        }
    }

    #[test]
    fn conflicts_union_of_edge_visibility() {
        let s = Ridge2dSpace::new(vec![
            Point2i::new(0, 0),
            Point2i::new(10, 0),
            Point2i::new(5, 10),
            Point2i::new(5, -3), // below the bottom edge
            Point2i::new(20, 5), // right of edge (1,2)
            Point2i::new(5, 3),  // interior
        ]);
        let hull = vec![0usize, 1, 2];
        let corners = s.active_configs(&hull);
        let at1 = corners.iter().find(|c| c.m == 1).unwrap();
        assert!(s.conflicts(at1, 3), "below bottom edge");
        assert!(s.conflicts(at1, 4), "right of right edge");
        assert!(!s.conflicts(at1, 5), "interior");
    }

    #[test]
    fn two_support_both_cases() {
        let pts = generators::disk_2d(14, 1 << 18, 3);
        let s = Ridge2dSpace::new(pts);
        let objs: Vec<usize> = (0..14).collect();
        for pi in s.active_configs(&objs) {
            // Case x = m (ridge point) and x = facet point, both checked by
            // the generic Definition 3.2 oracle.
            for x in s.defining_set(&pi) {
                let res = check_support(&s, &objs, &pi, x);
                assert_eq!(res, SupportCheck::Valid, "{pi:?}, x = {x}");
            }
        }
    }

    #[test]
    fn exhaustive_two_support_along_orders() {
        for seed in 0..3u64 {
            let pts = generators::disk_2d(14, 1 << 18, seed + 9);
            let order = generators::random_permutation(14, seed);
            let s = Ridge2dSpace::new(pts);
            assert_eq!(check_k_support_along_order(&s, &order), None, "seed {seed}");
        }
    }

    #[test]
    fn dependence_depth_logarithmic() {
        let n = 96;
        let pts = generators::disk_2d(n, 1 << 20, 17);
        let order = generators::random_permutation(n, 18);
        let s = Ridge2dSpace::new(pts);
        let stats = build_dep_graph(&s, &order, false);
        let hn: f64 = (1..=n).map(|i| 1.0 / i as f64).sum();
        // g = 3, k = 2: sigma = 6 e^2 ~ 44.
        assert!((stats.depth as f64) < 45.0 * hn, "depth {}", stats.depth);
        assert!(stats.depth >= 1);
    }
}
