//! Concrete configuration-space instances.

pub mod hull2d;
pub mod trapezoid;
pub mod ridge2d;
pub mod sorted_pairs;
