//! Per-shard append-only mutation journals — the recovery substrate.
//!
//! Every mutation a shard worker pops from its ingest queue is appended
//! here **before** it is applied to the hull; the journal append is the
//! commit point. A worker that panics mid-batch is therefore fully
//! described by (journal prefix, remaining queue): the supervisor
//! rebuilds the hull by replaying the journal through
//! [`chull_core::online::HullBuilder::replay`] and resumes draining the
//! queue — no acked mutation is lost and none is applied twice
//! (exactly-once through the journal).
//!
//! Since the windowed-serving redesign the journal records **typed
//! ops** ([`JournalOp`]): inserts and tombstones (explicit deletes and
//! window expirations, both journaled as tombstones so replay is
//! window-policy-independent). A rebuild-from-survivors compaction
//! collapses the log into one **checkpoint unit** via
//! [`Journal::reset_checkpoint`]: the survivors in order, preceded by a
//! checkpoint header carrying the number of batch units the checkpoint
//! replaces — so the shard's epoch/unit index keeps counting
//! monotonically across compactions and follower replication cursors
//! stay meaningful.
//!
//! Two tiers:
//!
//! * the **in-memory log** (always on): a `Vec` of typed ops, enough to
//!   survive worker panics within one process;
//! * an optional **on-disk WAL** (`hull serve --wal <dir>`): one file
//!   per shard of length-prefixed, crc32-checked records, enough to
//!   survive process crashes. Reopening tolerates a truncated or
//!   corrupt tail (the classic torn-write case): the file is truncated
//!   back to its last intact record and appending resumes there.
//!
//! Replay cost is one incremental construction over the journal —
//! Devillers' randomized `O(n log* n)` line (and this repo's measured
//! expected `O(log n)` per insert) is what keeps "recovery = re-run the
//! algorithm" cheap enough to be the *whole* recovery story.

use std::fs::{File, OpenOptions};
use std::io::{self, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), table-driven.
/// Small and std-only; speed is irrelevant next to the hull geometry.
fn crc32(bytes: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, e) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *e = c;
        }
        t
    });
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = table[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// One WAL record on disk: `u32` LE payload length, `u32` LE crc32 of
/// the payload, then the payload. Four payload shapes exist, with
/// pairwise-distinct lengths for every dimension `2..=8`:
///
/// * an **insert**: `dim` i64 LE coordinates (`len == dim * 8 >= 16`);
/// * a **tombstone**: one tag byte [`TOMBSTONE_TAG`] then `dim` i64 LE
///   coordinates (`len == dim * 8 + 1`) — an explicit delete or a
///   window expiration of the oldest live copy of those coordinates;
/// * a **batch marker**: a single `u32` LE — the number of ops
///   (inserts + tombstones) in the batch it closes (`len == 4`);
/// * a **checkpoint header**: `u32` LE magic [`CHECKPOINT_MAGIC`], a
///   `u64` LE *unit base*, and a `u64` LE survivor count (`len == 20`),
///   valid only as the very first record — the unit base is the number
///   of batch units that preceded (and were collapsed into) this
///   checkpoint, so `batch_count` keeps counting monotonically across
///   compactions; the survivor count says how many leading insert
///   records form the checkpoint unit itself (0 for a checkpoint of an
///   emptied shard), which the replication mirror needs to tell the
///   checkpoint unit apart from ordinary units appended after it.
///
/// Markers delimit the atomic units of apply: one marker is appended
/// (and synced) after a batch's ops and **before** the batch is applied
/// to the hull, so recovery replays whole batches through the same
/// parallel path the live shard used. Ops after the last marker are a
/// batch whose marker was lost to a crash; they are committed (journal
/// append is the commit point) and replay as one final batch.
const RECORD_HEADER: usize = 8;

/// Marker payload size; collides with no insert payload (`dim >= 2`).
const MARKER_LEN: usize = 4;

/// Checkpoint header payload size (magic + unit base + survivor count);
/// collides with no other record shape for `dim 2..=8`.
const CHECKPOINT_LEN: usize = 20;

/// First 4 bytes of a checkpoint header ("CHKP"); a 12-byte record
/// without it is damage, not a checkpoint.
const CHECKPOINT_MAGIC: u32 = 0x4348_4B50;

/// Tag byte opening a tombstone payload.
const TOMBSTONE_TAG: u8 = 1;

fn frame(payload: &[u8]) -> Vec<u8> {
    let mut rec = Vec::with_capacity(RECORD_HEADER + payload.len());
    rec.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    rec.extend_from_slice(&crc32(payload).to_le_bytes());
    rec.extend_from_slice(payload);
    rec
}

fn encode_record(p: &[i64]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(p.len() * 8);
    for &c in p {
        payload.extend_from_slice(&c.to_le_bytes());
    }
    frame(&payload)
}

fn encode_tombstone(p: &[i64]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(1 + p.len() * 8);
    payload.push(TOMBSTONE_TAG);
    for &c in p {
        payload.extend_from_slice(&c.to_le_bytes());
    }
    frame(&payload)
}

fn encode_marker(count: u32) -> Vec<u8> {
    frame(&count.to_le_bytes())
}

fn encode_checkpoint(unit_base: u64, survivors: u64) -> Vec<u8> {
    let mut payload = Vec::with_capacity(CHECKPOINT_LEN);
    payload.extend_from_slice(&CHECKPOINT_MAGIC.to_le_bytes());
    payload.extend_from_slice(&unit_base.to_le_bytes());
    payload.extend_from_slice(&survivors.to_le_bytes());
    frame(&payload)
}

fn decode_row(payload: &[u8]) -> Vec<i64> {
    payload
        .chunks_exact(8)
        .map(|c| i64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]))
        .collect()
}

/// One journaled mutation: the typed unit the shard worker commits
/// before applying, and the unit replication ships to followers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JournalOp {
    /// A row entered the live set (and the hull).
    Insert(Vec<i64>),
    /// The oldest live copy of a row left the live set — an explicit
    /// `Delete` or a window expiration; the journal does not
    /// distinguish, so replay is window-policy-independent.
    Tombstone(Vec<i64>),
}

impl JournalOp {
    /// The coordinate row either way.
    pub fn row(&self) -> &[i64] {
        match self {
            JournalOp::Insert(r) | JournalOp::Tombstone(r) => r,
        }
    }
}

/// Result of scanning a WAL file on reopen.
struct WalScan {
    /// Intact ops, in append order.
    ops: Vec<JournalOp>,
    /// Batch boundaries: cumulative op counts at each marker.
    marks: Vec<usize>,
    /// Units collapsed into a leading checkpoint header (0 without one).
    unit_base: u64,
    /// Leading ops that form the checkpoint unit itself (0 without one).
    checkpoint_rows: usize,
    /// Byte offset of the first damaged/incomplete record (== file
    /// length when the tail is clean).
    good_len: u64,
    /// Whether a damaged tail was found (and will be truncated away).
    tail_damaged: bool,
}

/// Read every intact record of dimension `dim`; stop at the first
/// truncated or corrupt one. Never errors on damage — damage is data.
fn scan_wal(file: &mut File, dim: usize) -> io::Result<WalScan> {
    let mut buf = Vec::new();
    file.seek(SeekFrom::Start(0))?;
    file.read_to_end(&mut buf)?;
    let mut ops: Vec<JournalOp> = Vec::new();
    let mut marks: Vec<usize> = Vec::new();
    let mut unit_base = 0u64;
    let mut checkpoint_rows = 0u64;
    let mut at = 0usize;
    loop {
        if at + RECORD_HEADER > buf.len() {
            break; // clean EOF or torn header
        }
        let len = u32::from_le_bytes([buf[at], buf[at + 1], buf[at + 2], buf[at + 3]]) as usize;
        let crc = u32::from_le_bytes([buf[at + 4], buf[at + 5], buf[at + 6], buf[at + 7]]);
        // A record sized as none of the known shapes is corruption, not
        // a format change: stop here.
        let known =
            len == dim * 8 || len == dim * 8 + 1 || len == MARKER_LEN || len == CHECKPOINT_LEN;
        if !known || at + RECORD_HEADER + len > buf.len() {
            break;
        }
        let payload = &buf[at + RECORD_HEADER..at + RECORD_HEADER + len];
        if crc32(payload) != crc {
            break;
        }
        if len == MARKER_LEN {
            let count =
                u32::from_le_bytes([payload[0], payload[1], payload[2], payload[3]]) as usize;
            // A marker must close a non-empty batch of exactly the ops
            // since the previous marker; anything else is a damaged
            // record that happened to checksum clean.
            let since = ops.len() - marks.last().copied().unwrap_or(0);
            if count == 0 || count != since {
                break;
            }
            marks.push(ops.len());
        } else if len == CHECKPOINT_LEN {
            // Only valid as the very first record; elsewhere it is
            // damage (a compaction never lands mid-file).
            let magic = u32::from_le_bytes([payload[0], payload[1], payload[2], payload[3]]);
            if at != 0 || magic != CHECKPOINT_MAGIC {
                break;
            }
            unit_base = u64::from_le_bytes([
                payload[4],
                payload[5],
                payload[6],
                payload[7],
                payload[8],
                payload[9],
                payload[10],
                payload[11],
            ]);
            checkpoint_rows = u64::from_le_bytes([
                payload[12],
                payload[13],
                payload[14],
                payload[15],
                payload[16],
                payload[17],
                payload[18],
                payload[19],
            ]);
        } else if len == dim * 8 + 1 {
            if payload[0] != TOMBSTONE_TAG {
                break;
            }
            ops.push(JournalOp::Tombstone(decode_row(&payload[1..])));
        } else {
            ops.push(JournalOp::Insert(decode_row(payload)));
        }
        at += RECORD_HEADER + len;
    }
    let checkpoint_rows = (checkpoint_rows as usize).min(ops.len());
    Ok(WalScan {
        ops,
        marks,
        unit_base,
        checkpoint_rows,
        good_len: at as u64,
        tail_damaged: at as u64 != buf.len() as u64,
    })
}

/// The per-shard WAL file name inside a `--wal` directory.
pub fn wal_path(dir: &Path, shard: u16) -> PathBuf {
    dir.join(format!("shard-{shard}.wal"))
}

/// Typed journal failure surfaced from replay-time sealing — previously
/// only a `debug_assert`, so release builds replayed a torn journal
/// silently.
#[derive(Debug)]
pub enum JournalError {
    /// Sealing the open tail left the journal with fewer batch units
    /// than the epoch the shard had already published: acked, applied
    /// units vanished from the journal (a torn tail the crc/size scan
    /// could not see, or a corrupted in-memory log). The rebuilt hull
    /// would be missing published state.
    TornTail {
        /// Batch units the shard had published before recovery.
        epoch: u64,
        /// Batch units actually present after sealing.
        batches: u64,
    },
    /// The WAL write of the sealing marker failed (the in-memory seal
    /// still landed; memory stays authoritative in-process).
    Wal(io::Error),
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::TornTail { epoch, batches } => write!(
                f,
                "torn journal tail: {batches} batch units on record, epoch {epoch} published"
            ),
            JournalError::Wal(e) => write!(f, "journal WAL write failed: {e}"),
        }
    }
}

impl std::error::Error for JournalError {}

/// An append-only mutation journal; see module docs. Owned by one
/// shard's supervisor thread (no internal locking needed).
pub struct Journal {
    dim: usize,
    mem: Vec<JournalOp>,
    /// Batch boundaries: cumulative op counts at each
    /// [`Journal::mark_batch`], ascending. Ops past the last mark form
    /// the open (in-flight) batch.
    marks: Vec<usize>,
    /// Batch units collapsed into the checkpoint this log starts from
    /// (0 for a log that has never compacted).
    unit_base: u64,
    /// Leading ops that form the checkpoint unit itself (0 without one).
    checkpoint_rows: usize,
    wal: Option<BufWriter<File>>,
    /// The WAL directory and shard id, kept so a checkpoint rewrite can
    /// re-create the file atomically (temp + rename + reopen).
    wal_at: Option<(PathBuf, u16)>,
    /// Records recovered from disk on open (prefix of `mem`).
    recovered: usize,
    /// Whether the reopened WAL had a damaged tail that was dropped.
    tail_damaged: bool,
}

impl Journal {
    /// A purely in-memory journal (survives worker panics, not process
    /// crashes).
    pub fn in_memory(dim: usize) -> Journal {
        Journal {
            dim,
            mem: Vec::new(),
            marks: Vec::new(),
            unit_base: 0,
            checkpoint_rows: 0,
            wal: None,
            wal_at: None,
            recovered: 0,
            tail_damaged: false,
        }
    }

    /// Open (or create) the shard's WAL under `dir`, recovering every
    /// intact record already on disk. A truncated or corrupt tail is
    /// cut off — [`Journal::tail_damaged`] reports that it happened —
    /// and appending resumes after the last intact record.
    pub fn with_wal(dim: usize, dir: &Path, shard: u16) -> io::Result<Journal> {
        std::fs::create_dir_all(dir)?;
        let path = wal_path(dir, shard);
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let scan = scan_wal(&mut file, dim)?;
        if scan.tail_damaged {
            file.set_len(scan.good_len)?;
        }
        file.seek(SeekFrom::Start(scan.good_len))?;
        let recovered = scan.ops.len();
        Ok(Journal {
            dim,
            mem: scan.ops,
            marks: scan.marks,
            unit_base: scan.unit_base,
            checkpoint_rows: scan.checkpoint_rows,
            wal: Some(BufWriter::new(file)),
            wal_at: Some((dir.to_path_buf(), shard)),
            recovered,
            tail_damaged: scan.tail_damaged,
        })
    }

    /// Append one insert. The in-memory log is updated first (it is the
    /// intra-process source of truth); the WAL write is buffered until
    /// [`Journal::sync`].
    pub fn append(&mut self, p: &[i64]) -> io::Result<()> {
        debug_assert_eq!(p.len(), self.dim, "journal row of wrong dimension");
        self.mem.push(JournalOp::Insert(p.to_vec()));
        if let Some(w) = &mut self.wal {
            w.write_all(&encode_record(p))?;
        }
        Ok(())
    }

    /// Append one tombstone: the oldest live copy of `p` died (explicit
    /// delete or window expiry). Journaled exactly like inserts —
    /// **before** the geometry reacts — so a crash between tombstoning
    /// and any triggered rebuild still replays to the same hull.
    pub fn append_tombstone(&mut self, p: &[i64]) -> io::Result<()> {
        debug_assert_eq!(p.len(), self.dim, "journal row of wrong dimension");
        self.mem.push(JournalOp::Tombstone(p.to_vec()));
        if let Some(w) = &mut self.wal {
            w.write_all(&encode_tombstone(p))?;
        }
        Ok(())
    }

    /// Flush buffered WAL writes to the OS (called once per applied
    /// batch, before the snapshot publishes). No-op without a WAL.
    pub fn sync(&mut self) -> io::Result<()> {
        if let Some(w) = &mut self.wal {
            w.flush()?;
        }
        Ok(())
    }

    /// Close the open batch: record that every op appended since the
    /// previous mark forms one atomic apply unit. Written (and meant to
    /// be [`Journal::sync`]ed) **before** the batch is applied, so a
    /// crash mid-apply still replays the batch whole. No-op when no
    /// ops are pending (batches are never empty).
    pub fn mark_batch(&mut self) -> io::Result<()> {
        let since = self.mem.len() - self.marks.last().copied().unwrap_or(0);
        if since == 0 {
            return Ok(());
        }
        // The in-memory mark lands even if the WAL write errors — like
        // `append`, memory stays authoritative for in-process recovery.
        let res = match &mut self.wal {
            Some(w) => w.write_all(&encode_marker(since as u32)),
            None => Ok(()),
        };
        self.marks.push(self.mem.len());
        res
    }

    /// Number of batch units the journal accounts for: the units a
    /// checkpoint collapsed ([`Journal::unit_base`]), every marked batch
    /// since, plus the open tail (ops past the last marker) if
    /// non-empty. The shard's published epoch equals this count.
    pub fn batch_count(&self) -> u64 {
        let marked = self.marks.last().copied().unwrap_or(0);
        self.unit_base + (self.marks.len() + usize::from(self.mem.len() > marked)) as u64
    }

    /// Batch units collapsed into this log's leading checkpoint (0 when
    /// the log has never compacted).
    pub fn unit_base(&self) -> u64 {
        self.unit_base
    }

    /// Leading ops that form the checkpoint unit itself (0 when the log
    /// has never compacted, or when the checkpoint emptied the shard).
    pub fn checkpoint_rows(&self) -> usize {
        self.checkpoint_rows
    }

    /// The journal split into its batch units, in append order — the
    /// batch-replay input. The open tail (if any) is the final unit.
    /// Units before [`Journal::unit_base`] no longer exist individually;
    /// the first yielded unit is the checkpoint unit when `unit_base >
    /// 0`.
    pub fn batches(&self) -> impl Iterator<Item = &[JournalOp]> {
        let mut bounds = Vec::with_capacity(self.marks.len() + 1);
        let mut prev = 0usize;
        for &m in &self.marks {
            bounds.push((prev, m));
            prev = m;
        }
        if self.mem.len() > prev {
            bounds.push((prev, self.mem.len()));
        }
        bounds.into_iter().map(move |(a, b)| &self.mem[a..b])
    }

    /// Every journaled op, in append order — the replay input.
    pub fn ops(&self) -> &[JournalOp] {
        &self.mem
    }

    /// The journaled **insert** rows in append order (tombstones
    /// skipped) — what an insert-only consumer (bulk cold start, legacy
    /// flat replication) sees.
    pub fn insert_rows(&self) -> Vec<Vec<i64>> {
        self.mem
            .iter()
            .filter_map(|op| match op {
                JournalOp::Insert(r) => Some(r.clone()),
                JournalOp::Tombstone(_) => None,
            })
            .collect()
    }

    /// True when no journaled op is a tombstone (the insert-only fast
    /// paths — flat replication, plain bulk replay — stay valid).
    pub fn is_insert_only(&self) -> bool {
        self.mem.iter().all(|op| matches!(op, JournalOp::Insert(_)))
    }

    /// Number of journaled ops (inserts + tombstones).
    pub fn len(&self) -> usize {
        self.mem.len()
    }

    /// True when nothing has been journaled.
    pub fn is_empty(&self) -> bool {
        self.mem.is_empty()
    }

    /// Seal the open tail for replay and **validate** the sealed journal
    /// against `published_epoch`, the number of batch units the shard had
    /// published before recovery began. Replay call sites use this
    /// instead of a bare [`Journal::mark_batch`]: a journal holding
    /// *fewer* units than were published means applied state has been
    /// lost — a torn tail — which used to be caught only by a
    /// `debug_assert` in the apply loop. Returns the sealed batch count
    /// (which may legitimately exceed `published_epoch` by the units that
    /// were journaled but died before publishing; replay reapplies them).
    /// A torn tail takes priority over a WAL write error.
    pub fn seal_tail(&mut self, published_epoch: u64) -> Result<u64, JournalError> {
        let wal = self.mark_batch();
        let batches = self.batch_count();
        if batches < published_epoch {
            return Err(JournalError::TornTail {
                epoch: published_epoch,
                batches,
            });
        }
        wal.map_err(JournalError::Wal)?;
        Ok(batches)
    }

    /// Collapse the whole log into **one checkpoint unit** holding
    /// `survivors` in order — the in-process compaction a rebuild-from-
    /// survivors commits. The journal's external batch count becomes
    /// exactly `old_count + 1` (`old_count` = [`Journal::batch_count`]
    /// before the call): the checkpoint is one new unit replacing all
    /// prior ones, so the shard's epoch and follower unit cursors keep
    /// advancing monotonically.
    pub fn reset_checkpoint(&mut self, survivors: &[Vec<i64>]) -> io::Result<()> {
        let after = self.batch_count() + 1;
        self.install_checkpoint(survivors, after)
    }

    /// Make this journal hold exactly one checkpoint unit — `survivors`
    /// in order, counting as unit number `units_after` (so
    /// [`Journal::batch_count`] becomes exactly `units_after`). Used by
    /// [`Journal::reset_checkpoint`] with the log's own successor count,
    /// and by a follower installing a replicated checkpoint at the
    /// primary's unit index. With empty `survivors` the checkpoint unit
    /// is empty, carried entirely by the header (`unit_base ==
    /// units_after`, no records) since batches are never empty.
    ///
    /// On-disk the WAL is atomically rewritten (temp file + rename +
    /// reopen): a crash mid-rewrite leaves the previous WAL intact, and
    /// replay then redoes the rebuild from the old log — same hull.
    pub fn install_checkpoint(
        &mut self,
        survivors: &[Vec<i64>],
        units_after: u64,
    ) -> io::Result<()> {
        assert!(units_after > 0, "a checkpoint is always at least unit 1");
        self.mem = survivors.iter().cloned().map(JournalOp::Insert).collect();
        if survivors.is_empty() {
            self.unit_base = units_after;
            self.marks = Vec::new();
        } else {
            self.unit_base = units_after - 1;
            self.marks = vec![survivors.len()];
        }
        self.checkpoint_rows = survivors.len();
        self.recovered = 0;
        self.tail_damaged = false;
        if let Some((dir, shard)) = self.wal_at.clone() {
            // Drop the old writer before the rename so its buffer can't
            // land in the replaced file afterwards.
            self.wal = None;
            rewrite_wal_checkpoint(self.dim, &dir, shard, survivors, self.unit_base)?;
            let file = OpenOptions::new()
                .append(true)
                .open(wal_path(&dir, shard))?;
            self.wal = Some(BufWriter::new(file));
        }
        debug_assert_eq!(self.batch_count(), units_after);
        Ok(())
    }

    /// Records recovered from disk when this journal was opened.
    pub fn recovered(&self) -> usize {
        self.recovered
    }

    /// Whether opening found (and dropped) a damaged WAL tail.
    pub fn tail_damaged(&self) -> bool {
        self.tail_damaged
    }
}

/// Atomically replace the shard's WAL with one checkpoint unit: a
/// header carrying `unit_base`, then `rows` in order, closed by a
/// single batch marker. Shared by offline compaction ([`rewrite_wal`])
/// and the in-process [`Journal::reset_checkpoint`]. The rewrite goes
/// through a temp file + rename, so a crash mid-compaction leaves the
/// old WAL intact.
fn rewrite_wal_checkpoint(
    dim: usize,
    dir: &Path,
    shard: u16,
    rows: &[Vec<i64>],
    unit_base: u64,
) -> io::Result<u64> {
    let final_path = wal_path(dir, shard);
    let tmp_path = final_path.with_extension("wal.tmp");
    let mut written = 0u64;
    {
        let file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp_path)?;
        let mut w = BufWriter::new(file);
        if unit_base > 0 {
            let rec = encode_checkpoint(unit_base, rows.len() as u64);
            w.write_all(&rec)?;
            written += rec.len() as u64;
        }
        for p in rows {
            debug_assert_eq!(p.len(), dim, "compaction row of wrong dimension");
            let rec = encode_record(p);
            w.write_all(&rec)?;
            written += rec.len() as u64;
        }
        if !rows.is_empty() {
            let rec = encode_marker(rows.len() as u32);
            w.write_all(&rec)?;
            written += rec.len() as u64;
        }
        w.flush()?;
        w.into_inner().map_err(|e| e.into_error())?.sync_all()?;
    }
    std::fs::rename(&tmp_path, &final_path)?;
    Ok(written)
}

/// Snapshot compaction (offline; `hull compact`): atomically rewrite the
/// shard's WAL as **one checkpoint unit** — `rows` in order, closed by a
/// single batch marker. The caller passes the bulk sweep's candidate
/// rows, so a long incremental history collapses into one unit holding
/// only the points that can still matter to the hull. Collapsing batch
/// history resets the epoch/unit count to 1: replication cursors into
/// this WAL are invalidated, and any follower must re-bootstrap
/// (documented in DESIGN §S21). The live auto-compaction path
/// ([`Journal::reset_checkpoint`]) instead preserves the unit index via
/// a checkpoint header.
pub fn rewrite_wal(dim: usize, dir: &Path, shard: u16, rows: &[Vec<i64>]) -> io::Result<u64> {
    rewrite_wal_checkpoint(dim, dir, shard, rows, 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("chull-journal-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn insert_entries(j: &Journal) -> Vec<Vec<i64>> {
        j.insert_rows()
    }

    #[test]
    fn crc32_known_vector() {
        // IEEE CRC-32 of "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn in_memory_appends_in_order() {
        let mut j = Journal::in_memory(2);
        j.append(&[1, 2]).unwrap();
        j.append(&[-3, 4]).unwrap();
        assert_eq!(insert_entries(&j), vec![vec![1, 2], vec![-3, 4]]);
        assert_eq!(j.len(), 2);
        assert_eq!(j.recovered(), 0);
        assert!(j.is_insert_only());
    }

    #[test]
    fn wal_roundtrip_across_reopen() {
        let dir = tmpdir("roundtrip");
        {
            let mut j = Journal::with_wal(3, &dir, 0).unwrap();
            for i in 0..50i64 {
                j.append(&[i, -i, i * 7]).unwrap();
            }
            j.sync().unwrap();
        }
        let j = Journal::with_wal(3, &dir, 0).unwrap();
        assert_eq!(j.recovered(), 50);
        assert!(!j.tail_damaged());
        assert_eq!(insert_entries(&j)[49], vec![49, -49, 343]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wal_shards_are_separate_files() {
        let dir = tmpdir("shards");
        let mut a = Journal::with_wal(2, &dir, 0).unwrap();
        let mut b = Journal::with_wal(2, &dir, 1).unwrap();
        a.append(&[1, 1]).unwrap();
        b.append(&[2, 2]).unwrap();
        a.sync().unwrap();
        b.sync().unwrap();
        drop((a, b));
        assert_eq!(
            insert_entries(&Journal::with_wal(2, &dir, 0).unwrap()),
            vec![vec![1, 1]]
        );
        assert_eq!(
            insert_entries(&Journal::with_wal(2, &dir, 1).unwrap()),
            vec![vec![2, 2]]
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_tail_is_tolerated_and_cut() {
        let dir = tmpdir("torn");
        {
            let mut j = Journal::with_wal(2, &dir, 0).unwrap();
            for i in 0..10i64 {
                j.append(&[i, i + 1]).unwrap();
            }
            j.sync().unwrap();
        }
        let path = wal_path(&dir, 0);
        // Tear the last record: drop its final 5 bytes.
        let len = std::fs::metadata(&path).unwrap().len();
        OpenOptions::new()
            .write(true)
            .open(&path)
            .unwrap()
            .set_len(len - 5)
            .unwrap();
        {
            let mut j = Journal::with_wal(2, &dir, 0).unwrap();
            assert_eq!(j.recovered(), 9, "torn final record dropped");
            assert!(j.tail_damaged());
            // Appending after recovery lands where the tear was cut.
            j.append(&[99, 100]).unwrap();
            j.sync().unwrap();
        }
        let j = Journal::with_wal(2, &dir, 0).unwrap();
        assert_eq!(j.recovered(), 10);
        assert_eq!(insert_entries(&j)[9], vec![99, 100]);
        assert!(!j.tail_damaged());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_crc_stops_recovery_at_last_good_record() {
        let dir = tmpdir("crc");
        {
            let mut j = Journal::with_wal(2, &dir, 0).unwrap();
            for i in 0..6i64 {
                j.append(&[i, i]).unwrap();
            }
            j.sync().unwrap();
        }
        let path = wal_path(&dir, 0);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip one payload byte of record 4 (0-based): every record is
        // 8 + 16 bytes; payload of record 4 starts at 4*24 + 8.
        let off = 4 * 24 + 8;
        bytes[off] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let j = Journal::with_wal(2, &dir, 0).unwrap();
        assert_eq!(
            j.recovered(),
            4,
            "records 4 and 5 dropped (crc broke the chain)"
        );
        assert!(j.tail_damaged());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn batch_marks_roundtrip_across_reopen() {
        let dir = tmpdir("marks");
        {
            let mut j = Journal::with_wal(2, &dir, 0).unwrap();
            for i in 0..4i64 {
                j.append(&[i, i]).unwrap();
            }
            j.mark_batch().unwrap();
            j.mark_batch().unwrap(); // empty: no-op
            for i in 4..9i64 {
                j.append(&[i, i]).unwrap();
            }
            j.mark_batch().unwrap();
            // Open tail: journaled but the process dies before the marker.
            j.append(&[99, 99]).unwrap();
            j.sync().unwrap();
            assert_eq!(j.batch_count(), 3);
        }
        let j = Journal::with_wal(2, &dir, 0).unwrap();
        assert_eq!(j.recovered(), 10);
        assert_eq!(j.batch_count(), 3, "open tail replays as one final batch");
        let units: Vec<usize> = j.batches().map(|b| b.len()).collect();
        assert_eq!(units, vec![4, 5, 1]);
        assert_eq!(
            j.batches().next().unwrap()[0],
            JournalOp::Insert(vec![0, 0])
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tombstones_roundtrip_across_reopen() {
        let dir = tmpdir("tombstones");
        {
            let mut j = Journal::with_wal(3, &dir, 0).unwrap();
            j.append(&[1, 2, 3]).unwrap();
            j.append(&[4, 5, 6]).unwrap();
            j.append_tombstone(&[1, 2, 3]).unwrap();
            j.mark_batch().unwrap();
            j.sync().unwrap();
            assert!(!j.is_insert_only());
            assert_eq!(j.len(), 3, "tombstones count as ops");
        }
        let j = Journal::with_wal(3, &dir, 0).unwrap();
        assert_eq!(j.recovered(), 3);
        assert!(!j.tail_damaged());
        assert_eq!(j.batch_count(), 1, "marker counts ops, not just inserts");
        assert_eq!(
            j.ops(),
            &[
                JournalOp::Insert(vec![1, 2, 3]),
                JournalOp::Insert(vec![4, 5, 6]),
                JournalOp::Tombstone(vec![1, 2, 3]),
            ]
        );
        assert_eq!(insert_entries(&j), vec![vec![1, 2, 3], vec![4, 5, 6]]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tombstone_with_bad_tag_is_damage() {
        let dir = tmpdir("bad-tag");
        {
            let mut j = Journal::with_wal(2, &dir, 0).unwrap();
            j.append(&[1, 1]).unwrap();
            j.append_tombstone(&[1, 1]).unwrap();
            j.sync().unwrap();
        }
        let path = wal_path(&dir, 0);
        let mut bytes = std::fs::read(&path).unwrap();
        // Corrupt the tombstone's tag byte and re-frame its crc so only
        // the tag check can reject it.
        let tag_at = 24 + RECORD_HEADER; // after one 2d insert record
        bytes[tag_at] = 9;
        let crc = crc32(&bytes[tag_at..tag_at + 17]);
        bytes[tag_at - 4..tag_at].copy_from_slice(&crc.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let j = Journal::with_wal(2, &dir, 0).unwrap();
        assert_eq!(j.recovered(), 1, "bad tombstone tag stops the scan");
        assert!(j.tail_damaged());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bogus_marker_count_stops_recovery() {
        let dir = tmpdir("bogus-mark");
        {
            let mut j = Journal::with_wal(2, &dir, 0).unwrap();
            j.append(&[1, 2]).unwrap();
            j.append(&[3, 4]).unwrap();
            j.mark_batch().unwrap();
            j.sync().unwrap();
        }
        // Append a well-framed marker claiming a 7-op batch that the
        // journal does not contain: the scan must treat it as damage.
        let path = wal_path(&dir, 0);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&encode_marker(7));
        std::fs::write(&path, &bytes).unwrap();
        let j = Journal::with_wal(2, &dir, 0).unwrap();
        assert_eq!(j.recovered(), 2);
        assert_eq!(j.batch_count(), 1);
        assert!(j.tail_damaged());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn in_memory_batches_track_marks() {
        let mut j = Journal::in_memory(2);
        assert_eq!(j.batch_count(), 0);
        j.append(&[0, 0]).unwrap();
        assert_eq!(j.batch_count(), 1, "open tail counts as a batch");
        j.mark_batch().unwrap();
        assert_eq!(j.batch_count(), 1);
        j.append(&[1, 1]).unwrap();
        j.append(&[2, 2]).unwrap();
        j.mark_batch().unwrap();
        assert_eq!(j.batch_count(), 2);
        let units: Vec<usize> = j.batches().map(|b| b.len()).collect();
        assert_eq!(units, vec![1, 2]);
    }

    #[test]
    fn seal_tail_validates_published_epoch() {
        let mut j = Journal::in_memory(2);
        j.append(&[0, 0]).unwrap();
        j.append(&[1, 1]).unwrap();
        j.mark_batch().unwrap();
        j.append(&[2, 2]).unwrap(); // open tail
        assert_eq!(j.batch_count(), 2);
        // Normal recovery: published epoch matches (or trails by the
        // unpublished unit) — the tail seals into its own unit.
        assert_eq!(j.seal_tail(2).unwrap(), 2);
        assert_eq!(j.batch_count(), 2);
        // Published 5 units but the journal only holds 2: torn tail,
        // detected in release builds too.
        match j.seal_tail(5) {
            Err(JournalError::TornTail {
                epoch: 5,
                batches: 2,
            }) => {}
            other => panic!("expected TornTail, got {other:?}"),
        }
        // Journal ahead of the published epoch is legitimate (unit died
        // between marker and publish; replay reapplies it).
        assert_eq!(j.seal_tail(1).unwrap(), 2);
    }

    #[test]
    fn rewrite_wal_collapses_to_one_unit() {
        let dir = tmpdir("compact");
        {
            let mut j = Journal::with_wal(2, &dir, 0).unwrap();
            for i in 0..9i64 {
                j.append(&[i, i * 3]).unwrap();
                j.mark_batch().unwrap();
            }
            j.sync().unwrap();
            assert_eq!(j.batch_count(), 9);
        }
        // Compact down to three surviving rows.
        let kept = vec![vec![0i64, 0], vec![4, 12], vec![8, 24]];
        let bytes = rewrite_wal(2, &dir, 0, &kept).unwrap();
        assert!(bytes > 0);
        let j = Journal::with_wal(2, &dir, 0).unwrap();
        assert_eq!(j.recovered(), 3);
        assert!(!j.tail_damaged());
        assert_eq!(j.batch_count(), 1, "checkpoint is one sealed unit");
        assert_eq!(insert_entries(&j), kept);
        let units: Vec<usize> = j.batches().map(|b| b.len()).collect();
        assert_eq!(units, vec![3]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reset_checkpoint_preserves_unit_index() {
        let dir = tmpdir("reset-checkpoint");
        {
            let mut j = Journal::with_wal(2, &dir, 0).unwrap();
            for i in 0..5i64 {
                j.append(&[i, i]).unwrap();
                j.mark_batch().unwrap();
            }
            j.append_tombstone(&[0, 0]).unwrap();
            j.mark_batch().unwrap();
            j.sync().unwrap();
            assert_eq!(j.batch_count(), 6);
            // Compact to the survivors: the checkpoint is unit 7.
            let survivors = vec![vec![1i64, 1], vec![2, 2]];
            j.reset_checkpoint(&survivors).unwrap();
            assert_eq!(j.batch_count(), 7, "checkpoint = old count + 1");
            assert_eq!(j.unit_base(), 6);
            assert_eq!(j.len(), 2);
            assert!(j.is_insert_only());
            // Appending keeps counting from there.
            j.append(&[9, 9]).unwrap();
            j.mark_batch().unwrap();
            j.sync().unwrap();
            assert_eq!(j.batch_count(), 8);
        }
        // And it all survives a process restart through the WAL header.
        let j = Journal::with_wal(2, &dir, 0).unwrap();
        assert_eq!(j.unit_base(), 6);
        assert_eq!(j.batch_count(), 8);
        assert_eq!(j.recovered(), 3);
        assert_eq!(insert_entries(&j), vec![vec![1, 1], vec![2, 2], vec![9, 9]]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reset_checkpoint_with_no_survivors_is_header_only() {
        let dir = tmpdir("reset-empty");
        {
            let mut j = Journal::with_wal(2, &dir, 0).unwrap();
            j.append(&[3, 3]).unwrap();
            j.mark_batch().unwrap();
            j.append_tombstone(&[3, 3]).unwrap();
            j.mark_batch().unwrap();
            j.sync().unwrap();
            assert_eq!(j.batch_count(), 2);
            j.reset_checkpoint(&[]).unwrap();
            assert_eq!(j.batch_count(), 3, "empty checkpoint still counts");
            assert!(j.is_empty());
        }
        let j = Journal::with_wal(2, &dir, 0).unwrap();
        assert_eq!(j.batch_count(), 3);
        assert_eq!(j.unit_base(), 3);
        assert!(j.is_empty());
        assert!(!j.tail_damaged());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_header_mid_file_is_damage() {
        let dir = tmpdir("mid-header");
        {
            let mut j = Journal::with_wal(2, &dir, 0).unwrap();
            j.append(&[1, 1]).unwrap();
            j.mark_batch().unwrap();
            j.sync().unwrap();
        }
        let path = wal_path(&dir, 0);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&encode_checkpoint(4, 0));
        std::fs::write(&path, &bytes).unwrap();
        let j = Journal::with_wal(2, &dir, 0).unwrap();
        assert_eq!(j.recovered(), 1);
        assert_eq!(j.unit_base(), 0, "mid-file header rejected");
        assert!(j.tail_damaged());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn garbage_prefix_yields_empty_journal() {
        let dir = tmpdir("garbage");
        std::fs::write(wal_path(&dir, 0), b"not a wal at all").unwrap();
        let j = Journal::with_wal(2, &dir, 0).unwrap();
        assert_eq!(j.recovered(), 0);
        assert!(j.tail_damaged());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
