//! Baseline hull algorithms: oracles and benchmark anchors.

pub mod brute;
pub mod giftwrap;
pub mod monotone_chain;
pub mod quickhull2d;
