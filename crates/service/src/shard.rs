//! The shard manager: epoch-versioned online hulls behind a batched,
//! backpressured ingest pipeline.
//!
//! Each shard is an **independent** hull (a namespace — clients route
//! requests by shard id, spreading unrelated workloads across workers).
//! Per shard:
//!
//! * one [`BoundedQueue`] of ingest items — producers are connection
//!   threads calling [`HullService::try_insert`], which never blocks: a
//!   full queue is reported as [`InsertOutcome::Overloaded`] so the wire
//!   layer replies with explicit backpressure instead of buffering;
//! * one **worker thread** that drains the queue in coalesced batches
//!   (`pop_batch`), applies them to its private [`OnlineHull`] through
//!   the staged exact kernel, and republishes an `Arc<HullSnapshot>`
//!   under a short write-lock — readers clone the `Arc` under the
//!   matching read-lock and never block ingest;
//! * a [`ShardStats`] block of lock-free counters.
//!
//! The first `d + 1` affinely independent points of a shard become its
//! seed simplex (arrivals are buffered until then); everything after goes
//! through `OnlineHull::insert`, i.e. history-graph descent with expected
//! `O(log n)` location per point in random arrival order.

use crate::snapshot::{HullSnapshot, SnapState};
use crate::stats::ShardStats;
use chull_concurrent::{BoundedQueue, PushError};
use chull_core::online::OnlineHull;
use chull_geometry::{exact::affine_rank, MAX_COORD};
use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc, Mutex, RwLock};
use std::thread::JoinHandle;

/// Sizing and placement knobs for one [`HullService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Dimension of every hull (2..=8).
    pub dim: usize,
    /// Number of independent shards.
    pub shards: usize,
    /// Ingest queue capacity per shard (backpressure threshold).
    pub queue_capacity: usize,
    /// Largest batch one publication coalesces.
    pub max_batch: usize,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            dim: 2,
            shards: 4,
            queue_capacity: 1024,
            max_batch: 256,
        }
    }
}

/// Outcome of a non-blocking insert attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertOutcome {
    /// Queued for the shard's next batch.
    Queued,
    /// Queue at capacity — the caller should retry after a pause.
    Overloaded,
}

/// Request-level failures (distinct from backpressure).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// Shard id out of range.
    BadShard(u16),
    /// Point rejected (wrong dimension or coordinate out of range).
    BadPoint(String),
    /// The service is shutting down.
    Closed,
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::BadShard(s) => write!(f, "shard {s} out of range"),
            ServiceError::BadPoint(msg) => write!(f, "bad point: {msg}"),
            ServiceError::Closed => write!(f, "service shutting down"),
        }
    }
}

enum Ingest {
    Insert(Vec<i64>),
    /// Barrier: acknowledged (with the publication epoch) only after every
    /// item queued before it has been applied and republished.
    Flush(mpsc::Sender<u64>),
}

/// Shard worker's private state: bootstrap buffer or live hull.
struct ShardCore {
    dim: usize,
    applied: u64,
    state: CoreState,
}

enum CoreState {
    /// Buffered arrivals + indices of an affinely independent subset.
    Boot {
        pts: Vec<Vec<i64>>,
        basis: Vec<usize>,
    },
    Live(OnlineHull),
}

impl ShardCore {
    fn new(dim: usize) -> ShardCore {
        ShardCore {
            dim,
            applied: 0,
            state: CoreState::Boot {
                pts: Vec::new(),
                basis: Vec::new(),
            },
        }
    }

    fn insert(&mut self, p: Vec<i64>) {
        self.applied += 1;
        match &mut self.state {
            CoreState::Boot { pts, basis } => {
                let mut rows: Vec<&[i64]> = basis.iter().map(|&i| pts[i].as_slice()).collect();
                rows.push(&p);
                if affine_rank(&rows) == rows.len() {
                    basis.push(pts.len());
                }
                pts.push(p);
                if basis.len() == self.dim + 1 {
                    // Seed simplex found: promote to a live hull and replay
                    // the remaining buffered arrivals in order.
                    let seeds: Vec<Vec<i64>> = basis.iter().map(|&i| pts[i].clone()).collect();
                    let mut hull = OnlineHull::new(self.dim, &seeds);
                    let basis_set: std::collections::HashSet<usize> =
                        basis.iter().copied().collect();
                    for (i, q) in pts.iter().enumerate() {
                        if !basis_set.contains(&i) {
                            hull.insert(q);
                        }
                    }
                    self.state = CoreState::Live(hull);
                }
            }
            CoreState::Live(hull) => {
                hull.insert(&p);
            }
        }
    }

    fn snapshot(&self, epoch: u64) -> HullSnapshot {
        HullSnapshot {
            epoch,
            applied: self.applied,
            dim: self.dim,
            state: match &self.state {
                CoreState::Boot { pts, .. } => SnapState::Boot(pts.clone()),
                CoreState::Live(h) => SnapState::Live(h.clone()),
            },
        }
    }
}

struct Shard {
    queue: Arc<BoundedQueue<Ingest>>,
    snap: Arc<RwLock<Arc<HullSnapshot>>>,
    stats: Arc<ShardStats>,
    worker: Mutex<Option<JoinHandle<()>>>,
}

/// The shard manager; see module docs. Shared (`&self`) by every
/// connection thread; [`HullService::shutdown`] drains and joins.
pub struct HullService {
    config: ServiceConfig,
    shards: Vec<Shard>,
}

impl HullService {
    /// Start `config.shards` shard workers.
    pub fn new(config: ServiceConfig) -> HullService {
        assert!(
            (2..=chull_core::facet::MAX_DIM).contains(&config.dim),
            "dimension out of range"
        );
        assert!(config.shards >= 1 && config.shards < u16::MAX as usize);
        let shards = (0..config.shards)
            .map(|_| {
                let queue = Arc::new(BoundedQueue::new(config.queue_capacity));
                let snap = Arc::new(RwLock::new(Arc::new(HullSnapshot::empty(config.dim))));
                let stats = Arc::new(ShardStats::default());
                let worker = {
                    let queue = Arc::clone(&queue);
                    let snap = Arc::clone(&snap);
                    let stats = Arc::clone(&stats);
                    let dim = config.dim;
                    let max_batch = config.max_batch;
                    std::thread::spawn(move || shard_worker(dim, max_batch, &queue, &snap, &stats))
                };
                Shard {
                    queue,
                    snap,
                    stats,
                    worker: Mutex::new(Some(worker)),
                }
            })
            .collect();
        HullService { config, shards }
    }

    /// The configuration this service was started with.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    fn shard(&self, id: u16) -> Result<&Shard, ServiceError> {
        self.shards
            .get(id as usize)
            .ok_or(ServiceError::BadShard(id))
    }

    fn validate(&self, point: &[i64]) -> Result<(), ServiceError> {
        if point.len() != self.config.dim {
            return Err(ServiceError::BadPoint(format!(
                "expected {} coordinates, got {}",
                self.config.dim,
                point.len()
            )));
        }
        if let Some(c) = point.iter().find(|c| c.abs() > MAX_COORD) {
            return Err(ServiceError::BadPoint(format!(
                "coordinate {c} exceeds MAX_COORD"
            )));
        }
        Ok(())
    }

    /// Non-blocking insert; `Overloaded` is the backpressure signal.
    pub fn try_insert(&self, shard: u16, point: Vec<i64>) -> Result<InsertOutcome, ServiceError> {
        self.validate(&point)?;
        let sh = self.shard(shard)?;
        match sh.queue.try_push(Ingest::Insert(point)) {
            Ok(()) => {
                sh.stats.inserts_enqueued.fetch_add(1, Ordering::Relaxed);
                Ok(InsertOutcome::Queued)
            }
            Err(PushError::Full(_)) => {
                sh.stats.overloaded.fetch_add(1, Ordering::Relaxed);
                Ok(InsertOutcome::Overloaded)
            }
            Err(PushError::Closed(_)) => Err(ServiceError::Closed),
        }
    }

    /// Barrier: blocks until every insert enqueued before this call has
    /// been applied and republished; returns the publication epoch.
    pub fn flush(&self, shard: u16) -> Result<u64, ServiceError> {
        let sh = self.shard(shard)?;
        sh.stats.flushes.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = mpsc::channel();
        // Blocking push: a flush may wait for queue space, but never
        // spins — it rides the same FIFO as the inserts it fences.
        match sh.queue.push(Ingest::Flush(tx)) {
            Ok(()) => rx.recv().map_err(|_| ServiceError::Closed),
            Err(_) => Err(ServiceError::Closed),
        }
    }

    /// The shard's current published snapshot (wait-free for ingest: the
    /// write side holds the lock only to swap an `Arc`).
    pub fn snapshot(&self, shard: u16) -> Result<Arc<HullSnapshot>, ServiceError> {
        let sh = self.shard(shard)?;
        Ok(Arc::clone(&sh.snap.read().unwrap()))
    }

    /// Per-shard stats block (for folding query-path kernel counters).
    pub fn stats_for(&self, shard: u16) -> Result<&ShardStats, ServiceError> {
        Ok(&self.shard(shard)?.stats)
    }

    /// Queue depth gauge for one shard.
    pub fn queue_depth(&self, shard: u16) -> Result<usize, ServiceError> {
        Ok(self.shard(shard)?.queue.len())
    }

    /// One JSON line: a single shard's counters, or (for `None`) the
    /// service aggregate with a per-shard breakdown.
    pub fn stats_json(&self, shard: Option<u16>) -> Result<String, ServiceError> {
        match shard {
            Some(id) => {
                let sh = self.shard(id)?;
                let snap = Arc::clone(&sh.snap.read().unwrap());
                Ok(sh.stats.json(id as usize, &snap, sh.queue.len()))
            }
            None => {
                let mut total_applied = 0u64;
                let mut total_facets = 0usize;
                let mut parts = Vec::with_capacity(self.shards.len());
                for (i, sh) in self.shards.iter().enumerate() {
                    let snap = Arc::clone(&sh.snap.read().unwrap());
                    total_applied += snap.applied;
                    total_facets += snap.num_facets();
                    parts.push(sh.stats.json(i, &snap, sh.queue.len()));
                }
                Ok(format!(
                    "{{\"dim\":{},\"shards\":{},\"applied_total\":{total_applied},\
                     \"hull_facets_total\":{total_facets},\"per_shard\":[{}]}}",
                    self.config.dim,
                    self.shards.len(),
                    parts.join(",")
                ))
            }
        }
    }

    /// Graceful shutdown: close every ingest queue (pending batches still
    /// apply), then join the workers. Idempotent.
    pub fn shutdown(&self) {
        for sh in &self.shards {
            sh.queue.close();
        }
        for sh in &self.shards {
            if let Some(h) = sh.worker.lock().unwrap().take() {
                h.join().expect("shard worker panicked");
            }
        }
    }
}

impl Drop for HullService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The per-shard ingest loop: block for a batch, apply it, republish.
fn shard_worker(
    dim: usize,
    max_batch: usize,
    queue: &BoundedQueue<Ingest>,
    snap: &RwLock<Arc<HullSnapshot>>,
    stats: &ShardStats,
) {
    let mut core = ShardCore::new(dim);
    let mut epoch = 0u64;
    let mut batch: Vec<Ingest> = Vec::with_capacity(max_batch);
    loop {
        batch.clear();
        if queue.pop_batch(max_batch, &mut batch) == 0 {
            // Closed and drained.
            return;
        }
        let mut inserted = 0u64;
        let mut flushes: Vec<mpsc::Sender<u64>> = Vec::new();
        for item in batch.drain(..) {
            match item {
                Ingest::Insert(p) => {
                    core.insert(p);
                    inserted += 1;
                }
                Ingest::Flush(tx) => flushes.push(tx),
            }
        }
        if inserted > 0 {
            epoch += 1;
            stats.record_batch(inserted);
            let published = Arc::new(core.snapshot(epoch));
            // Short critical section: swap one Arc.
            *snap.write().unwrap() = published;
        }
        for tx in flushes {
            // Receiver may have given up (client disconnect) — fine.
            let _ = tx.send(epoch);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chull_core::context::prepare_points;
    use chull_core::seq::incremental_hull_run;
    use chull_geometry::{generators, KernelCounts, PointSet};

    fn cfg(dim: usize, shards: usize) -> ServiceConfig {
        ServiceConfig {
            dim,
            shards,
            queue_capacity: 64,
            max_batch: 16,
        }
    }

    #[test]
    fn single_shard_matches_offline_hull() {
        let pts = prepare_points(
            &PointSet::from_points2(&generators::disk_2d(300, 1 << 20, 11)),
            12,
        );
        let svc = HullService::new(cfg(2, 1));
        for p in pts.iter() {
            loop {
                match svc.try_insert(0, p.to_vec()).unwrap() {
                    InsertOutcome::Queued => break,
                    InsertOutcome::Overloaded => std::thread::yield_now(),
                }
            }
        }
        svc.flush(0).unwrap();
        let snap = svc.snapshot(0).unwrap();
        assert!(snap.ready());
        assert_eq!(snap.num_points(), pts.len());
        let offline = incremental_hull_run(&pts);
        // Same point multiset => identical facet geometry; vertex ids may
        // differ (the shard reorders its seed simplex to the front), so
        // compare canonical coordinate sets.
        let served = canonical_coords(&snap.flat_points(), &snap.output(), 2);
        let expect = canonical_coords(pts.flat(), &offline.output, 2);
        assert_eq!(served, expect);
        svc.shutdown();
    }

    fn canonical_coords(
        flat: &[i64],
        out: &chull_core::HullOutput,
        dim: usize,
    ) -> std::collections::BTreeSet<Vec<Vec<i64>>> {
        out.facets
            .iter()
            .map(|f| {
                let mut verts: Vec<Vec<i64>> = f[..dim]
                    .iter()
                    .map(|&v| flat[v as usize * dim..(v as usize + 1) * dim].to_vec())
                    .collect();
                verts.sort();
                verts
            })
            .collect()
    }

    #[test]
    fn shards_are_independent() {
        let svc = HullService::new(cfg(2, 2));
        for p in [[0, 0], [8, 0], [0, 8], [8, 8]] {
            svc.try_insert(0, p.to_vec()).unwrap();
        }
        for p in [[100, 100], [101, 100], [100, 101]] {
            svc.try_insert(1, p.to_vec()).unwrap();
        }
        svc.flush(0).unwrap();
        svc.flush(1).unwrap();
        let s0 = svc.snapshot(0).unwrap();
        let s1 = svc.snapshot(1).unwrap();
        assert_eq!(s0.num_points(), 4);
        assert_eq!(s1.num_points(), 3);
        let mut k = KernelCounts::default();
        assert_eq!(s0.contains(&[4, 4], &mut k), Some(true));
        assert_eq!(s1.contains(&[4, 4], &mut k), Some(false));
    }

    #[test]
    fn bootstrap_buffers_degenerate_prefix() {
        let svc = HullService::new(cfg(2, 1));
        // Collinear prefix: stays in bootstrap.
        for p in [[0, 0], [1, 1], [2, 2], [3, 3]] {
            svc.try_insert(0, p.to_vec()).unwrap();
        }
        svc.flush(0).unwrap();
        let snap = svc.snapshot(0).unwrap();
        assert!(!snap.ready());
        assert_eq!(snap.num_points(), 4);
        // One off-line point completes the simplex; the buffer replays.
        svc.try_insert(0, vec![5, 0]).unwrap();
        svc.flush(0).unwrap();
        let snap = svc.snapshot(0).unwrap();
        assert!(snap.ready());
        assert_eq!(snap.num_points(), 5);
        let mut k = KernelCounts::default();
        assert_eq!(snap.contains(&[2, 1], &mut k), Some(true));
    }

    #[test]
    fn rejects_bad_input() {
        let svc = HullService::new(cfg(2, 1));
        assert!(matches!(
            svc.try_insert(5, vec![0, 0]),
            Err(ServiceError::BadShard(5))
        ));
        assert!(matches!(
            svc.try_insert(0, vec![0, 0, 0]),
            Err(ServiceError::BadPoint(_))
        ));
        assert!(matches!(
            svc.try_insert(0, vec![i64::MAX, 0]),
            Err(ServiceError::BadPoint(_))
        ));
    }

    #[test]
    fn epoch_is_monotone_and_batches_coalesce() {
        let svc = HullService::new(ServiceConfig {
            dim: 2,
            shards: 1,
            queue_capacity: 512,
            max_batch: 64,
        });
        let pts = prepare_points(
            &PointSet::from_points2(&generators::disk_2d(200, 1 << 16, 3)),
            4,
        );
        for p in pts.iter() {
            loop {
                match svc.try_insert(0, p.to_vec()).unwrap() {
                    InsertOutcome::Queued => break,
                    InsertOutcome::Overloaded => std::thread::yield_now(),
                }
            }
        }
        let e1 = svc.flush(0).unwrap();
        assert!(e1 >= 1);
        let snap = svc.snapshot(0).unwrap();
        assert_eq!(snap.epoch, e1);
        assert_eq!(snap.applied, 200);
        // Flush with nothing pending must not bump the epoch.
        let e2 = svc.flush(0).unwrap();
        assert_eq!(e2, e1);
        let stats = svc.stats_json(Some(0)).unwrap();
        assert!(stats.contains("\"batched_inserts\":200"), "{stats}");
        let agg = svc.stats_json(None).unwrap();
        assert!(agg.contains("\"applied_total\":200"), "{agg}");
    }
}
