//! Point location through the history (influence) graph — the structure
//! the paper relates the configuration dependence graph to in Section 4.
//!
//! Builds a hull once, then answers "is q inside the hull?" queries in
//! expected O(log n) visited history nodes, with exact arithmetic.
//!
//! Run with: `cargo run --release --example point_location`

use convex_hull_suite::core::history::HullHistory;
use convex_hull_suite::core::prepare_points;
use convex_hull_suite::core::seq::incremental_hull_run;
use convex_hull_suite::geometry::{generators, PointSet};

fn main() {
    let n = 100_000;
    let pts = prepare_points(
        &PointSet::from_points2(&generators::disk_2d(n, 1 << 30, 3)),
        4,
    );
    let run = incremental_hull_run(&pts);
    let history = HullHistory::from_run(&pts, &run);
    println!(
        "built hull of {n} points: {} hull edges, {} history nodes",
        run.stats.hull_facets,
        history.len()
    );

    let mut rng = generators::rng(8);
    let queries = 10_000;
    let mut inside = 0usize;
    let mut total_visits = 0usize;
    for _ in 0..queries {
        let q = [
            rng.gen_range(-(1i64 << 31)..(1i64 << 31)),
            rng.gen_range(-(1i64 << 31)..(1i64 << 31)),
        ];
        let loc = history.locate(&q);
        total_visits += loc.nodes_visited;
        if loc.is_inside() {
            inside += 1;
        }
    }
    let hn: f64 = (1..=n).map(|i| 1.0 / i as f64).sum();
    println!("{queries} random membership queries:");
    println!("  inside: {inside}, outside: {}", queries - inside);
    println!(
        "  mean history nodes visited: {:.1}  (H_n = {hn:.1}; expected O(log n))",
        total_visits as f64 / queries as f64
    );

    // Sanity: every input point is inside its own hull.
    for i in (0..n).step_by(9973) {
        assert!(history.contains(pts.point(i)));
    }
    println!("  spot-checked input points: all inside. ✔");
}
