//! The process-global metric registry and Prometheus text exposition.
//!
//! Registration is idempotent on `(name, labels)`: instrumentation
//! sites call [`Registry::counter`] / [`Registry::histogram`] once at
//! init (usually through a `OnceLock`-cached struct) and hold the
//! returned `Arc` — the registry `Mutex` is never on a record path,
//! only on registration and scrape.

use crate::counter::{Counter, Gauge};
use crate::histogram::{bucket_upper, Histogram};
use std::fmt::Write as _;
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

struct Entry {
    name: String,
    labels: Vec<(String, String)>,
    help: String,
    metric: Metric,
}

/// A name → metric table; see the module docs. Usually accessed
/// through the process-global [`registry()`].
pub struct Registry {
    entries: Mutex<Vec<Entry>>,
}

fn canon(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    let mut v: Vec<(String, String)> = labels
        .iter()
        .map(|(k, val)| (k.to_string(), val.to_string()))
        .collect();
    v.sort();
    v
}

fn escape(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn label_str(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    if labels.is_empty() && extra.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{}\"", escape(v)));
    }
    format!("{{{}}}", parts.join(","))
}

impl Registry {
    /// An empty registry (tests; production code uses [`registry()`]).
    pub fn new() -> Registry {
        Registry {
            entries: Mutex::new(Vec::new()),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Vec<Entry>> {
        match self.entries.lock() {
            Ok(g) => g,
            // A scrape or registration never leaves entries half-written.
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn get_or_insert(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        help: &str,
        make: impl FnOnce() -> Metric,
    ) -> Metric {
        let labels = canon(labels);
        let mut entries = self.lock();
        for e in entries.iter() {
            if e.name == name && e.labels == labels {
                return match &e.metric {
                    Metric::Counter(c) => Metric::Counter(Arc::clone(c)),
                    Metric::Gauge(g) => Metric::Gauge(Arc::clone(g)),
                    Metric::Histogram(h) => Metric::Histogram(Arc::clone(h)),
                };
            }
        }
        let metric = make();
        if let Some(e) = entries.iter().find(|e| e.name == name) {
            assert_eq!(
                e.metric.kind(),
                metric.kind(),
                "metric family '{name}' registered with two different types"
            );
        }
        let out = match &metric {
            Metric::Counter(c) => Metric::Counter(Arc::clone(c)),
            Metric::Gauge(g) => Metric::Gauge(Arc::clone(g)),
            Metric::Histogram(h) => Metric::Histogram(Arc::clone(h)),
        };
        entries.push(Entry {
            name: name.to_string(),
            labels,
            help: help.to_string(),
            metric,
        });
        out
    }

    /// Get or register an unlabeled counter.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        self.counter_with(name, &[], help)
    }

    /// Get or register a counter with labels. Panics if `(name,
    /// labels)` already names a different metric type.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Arc<Counter> {
        match self.get_or_insert(name, labels, help, || {
            Metric::Counter(Arc::new(Counter::new()))
        }) {
            Metric::Counter(c) => c,
            other => panic!("'{name}' is a {}, not a counter", other.kind()),
        }
    }

    /// Get or register an unlabeled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        self.gauge_with(name, &[], help)
    }

    /// Get or register a gauge with labels.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Arc<Gauge> {
        match self.get_or_insert(name, labels, help, || Metric::Gauge(Arc::new(Gauge::new()))) {
            Metric::Gauge(g) => g,
            other => panic!("'{name}' is a {}, not a gauge", other.kind()),
        }
    }

    /// Get or register an unlabeled histogram.
    pub fn histogram(&self, name: &str, help: &str) -> Arc<Histogram> {
        self.histogram_with(name, &[], help)
    }

    /// Get or register a histogram with labels.
    pub fn histogram_with(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        help: &str,
    ) -> Arc<Histogram> {
        match self.get_or_insert(name, labels, help, || {
            Metric::Histogram(Arc::new(Histogram::new()))
        }) {
            Metric::Histogram(h) => h,
            other => panic!("'{name}' is a {}, not a histogram", other.kind()),
        }
    }

    /// Render the whole registry as Prometheus text exposition
    /// (version 0.0.4): families sorted by name, `# HELP`/`# TYPE`
    /// once per family, histograms as cumulative `le` buckets (powers
    /// of two up to the highest occupied bucket, then `+Inf`) plus
    /// `_sum`/`_count`, with the exact observed maximum as a companion
    /// `<name>_max` gauge family.
    pub fn render(&self) -> String {
        let entries = self.lock();
        let mut idx: Vec<usize> = (0..entries.len()).collect();
        idx.sort_by(|&a, &b| {
            (entries[a].name.as_str(), &entries[a].labels)
                .cmp(&(entries[b].name.as_str(), &entries[b].labels))
        });

        let mut out = String::new();
        let mut i = 0;
        while i < idx.len() {
            let name = entries[idx[i]].name.clone();
            let mut j = i;
            while j < idx.len() && entries[idx[j]].name == name {
                j += 1;
            }
            let family = &idx[i..j];
            let first = &entries[family[0]];
            let kind = first.metric.kind();
            let _ = writeln!(out, "# HELP {name} {}", escape(&first.help));
            let _ = writeln!(out, "# TYPE {name} {kind}");
            for &k in family {
                let e = &entries[k];
                let ls = label_str(&e.labels, None);
                match &e.metric {
                    Metric::Counter(c) => {
                        let _ = writeln!(out, "{name}{ls} {}", c.get());
                    }
                    Metric::Gauge(g) => {
                        let _ = writeln!(out, "{name}{ls} {}", g.get());
                    }
                    Metric::Histogram(h) => {
                        let snap = h.snapshot();
                        let top = snap.buckets.iter().rposition(|&c| c != 0).unwrap_or(0);
                        let mut cum = 0u64;
                        for (b, &c) in snap.buckets.iter().enumerate().take(top + 1) {
                            cum += c;
                            let le = bucket_upper(b).to_string();
                            let ls = label_str(&e.labels, Some(("le", &le)));
                            let _ = writeln!(out, "{name}_bucket{ls} {cum}");
                        }
                        let ls_inf = label_str(&e.labels, Some(("le", "+Inf")));
                        let _ = writeln!(out, "{name}_bucket{ls_inf} {}", snap.count);
                        let _ = writeln!(out, "{name}_sum{ls} {}", snap.sum);
                        let _ = writeln!(out, "{name}_count{ls} {}", snap.count);
                    }
                }
            }
            // Exact-max companion family for histograms (Prometheus
            // histograms cannot carry an exact max themselves).
            if kind == "histogram" {
                let _ = writeln!(out, "# HELP {name}_max largest observation of {name}");
                let _ = writeln!(out, "# TYPE {name}_max gauge");
                for &k in family {
                    let e = &entries[k];
                    if let Metric::Histogram(h) = &e.metric {
                        let ls = label_str(&e.labels, None);
                        let _ = writeln!(out, "{name}_max{ls} {}", h.snapshot().max);
                    }
                }
            }
            i = j;
        }
        out
    }
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

/// The process-global registry every instrumentation site registers
/// into and both exposition paths (wire `Metrics` op, HTTP
/// `/metrics`) render from.
pub fn registry() -> &'static Registry {
    static R: OnceLock<Registry> = OnceLock::new();
    R.get_or_init(Registry::new)
}

#[cfg(all(test, not(feature = "noop")))]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent_and_shared() {
        crate::arm();
        let r = Registry::new();
        let a = r.counter("test_total", "help");
        let b = r.counter("test_total", "help");
        a.add(3);
        assert_eq!(b.get(), 3);
    }

    #[test]
    fn labeled_series_are_distinct() {
        crate::arm();
        let r = Registry::new();
        let a = r.counter_with("ops_total", &[("op", "a")], "help");
        let b = r.counter_with("ops_total", &[("op", "b")], "help");
        a.incr();
        assert_eq!(a.get(), 1);
        assert_eq!(b.get(), 0);
    }

    #[test]
    #[should_panic(expected = "registered with two different types")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.counter("mixed", "help");
        r.gauge_with("mixed", &[("x", "1")], "help");
    }

    #[test]
    fn render_shapes() {
        crate::arm();
        let r = Registry::new();
        r.counter("z_total", "last family").incr();
        let g = r.gauge("a_gauge", "first family");
        g.set(-7);
        let h = r.histogram_with("lat_us", &[("op", "q")], "latency");
        h.record(0);
        h.record(5);
        let text = r.render();
        // Families sorted by name.
        let a = text.find("# HELP a_gauge").unwrap();
        let l = text.find("# HELP lat_us").unwrap();
        let z = text.find("# HELP z_total").unwrap();
        assert!(a < l && l < z, "{text}");
        assert!(text.contains("a_gauge -7\n"));
        assert!(text.contains("z_total 1\n"));
        // Cumulative buckets: value 0 → le="0" 1; value 5 → bucket 3
        // (le="7") cumulative 2; +Inf = count.
        assert!(
            text.contains("lat_us_bucket{op=\"q\",le=\"0\"} 1\n"),
            "{text}"
        );
        assert!(
            text.contains("lat_us_bucket{op=\"q\",le=\"7\"} 2\n"),
            "{text}"
        );
        assert!(text.contains("lat_us_bucket{op=\"q\",le=\"+Inf\"} 2\n"));
        assert!(text.contains("lat_us_sum{op=\"q\"} 5\n"));
        assert!(text.contains("lat_us_count{op=\"q\"} 2\n"));
        assert!(text.contains("# TYPE lat_us_max gauge\n"));
        assert!(text.contains("lat_us_max{op=\"q\"} 5\n"));
    }
}
