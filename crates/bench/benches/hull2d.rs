//! 2D hull benchmarks: Algorithm 2 vs Algorithm 3 vs the divide-and-conquer
//! baselines, on the easy (disk) and adversarial (convex-position) regimes.

use chull_bench::harness::Bench;
use chull_bench::{prepared_disk_2d, prepared_parabola_2d};
use chull_core::baseline::{monotone_chain, quickhull2d};
use chull_core::par::{parallel_hull, ParOptions};
use chull_core::seq::incremental_hull_run;
use chull_geometry::Point2i;

fn main() {
    let mut b = Bench::new().samples(5).target_sample_time(0.2);

    for &n in &[10_000usize, 100_000] {
        let pts = prepared_disk_2d(n, 5);
        let raw: Vec<Point2i> = (0..pts.len())
            .map(|i| Point2i::new(pts.point(i)[0], pts.point(i)[1]))
            .collect();
        b.bench(&format!("hull2d_disk/monotone_chain/{n}"), || {
            monotone_chain::hull_indices(&raw)
        });
        b.bench(&format!("hull2d_disk/quickhull/{n}"), || {
            quickhull2d::hull_indices(&raw)
        });
        b.bench(&format!("hull2d_disk/incremental_seq/{n}"), || {
            incremental_hull_run(&pts)
        });
        b.bench(&format!("hull2d_disk/incremental_par/{n}"), || {
            parallel_hull(&pts, ParOptions::default())
        });
    }

    {
        let n = 10_000usize;
        let pts = prepared_parabola_2d(n, 6);
        let raw: Vec<Point2i> = (0..pts.len())
            .map(|i| Point2i::new(pts.point(i)[0], pts.point(i)[1]))
            .collect();
        b.bench(
            &format!("hull2d_convex_position/monotone_chain/{n}"),
            || monotone_chain::hull_indices(&raw),
        );
        b.bench(
            &format!("hull2d_convex_position/incremental_seq/{n}"),
            || incremental_hull_run(&pts),
        );
        b.bench(
            &format!("hull2d_convex_position/incremental_par/{n}"),
            || parallel_hull(&pts, ParOptions::default()),
        );
    }

    b.report();
}
