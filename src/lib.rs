//! # convex-hull-suite
//!
//! Facade crate for the reproduction of *Randomized Incremental Convex
//! Hull is Highly Parallel* (Blelloch, Gu, Shun, Sun — SPAA 2020).
//!
//! Re-exports the workspace crates:
//!
//! * [`geometry`] — exact predicates, points, generators;
//! * [`confspace`] — configuration spaces, support sets, dependence graphs;
//! * [`concurrent`] — the lock-free `InsertAndSet` multimaps and arena;
//! * [`core`] — Algorithms 2 and 3, baselines, instrumentation;
//! * [`apps`] — half-space intersection, circle intersection, Delaunay;
//! * [`service`] — the long-lived hull server (sharded online hulls,
//!   batched ingest, snapshot reads, TCP wire protocol);
//! * [`net`] — the std-only readiness layer under the server's event
//!   loop (hand-rolled epoll/poll, non-blocking buffers, frame codec);
//! * [`obs`] — lock-free telemetry (striped counters, log₂ histograms,
//!   event tracing, Prometheus `/metrics` exposition).
//!
//! See `README.md` for a tour and `DESIGN.md`/`EXPERIMENTS.md` for the
//! paper-to-code map.

pub use chull_apps as apps;
pub use chull_concurrent as concurrent;
pub use chull_confspace as confspace;
pub use chull_core as core;
pub use chull_geometry as geometry;
pub use chull_net as net;
pub use chull_obs as obs;
pub use chull_service as service;
