//! The experiment harness: regenerates every figure/table-equivalent of the
//! paper (see DESIGN.md §5 for the experiment index and EXPERIMENTS.md for
//! recorded results).
//!
//! Usage:
//!   experiments [--fast] [e1 e2 ... | all]
//!
//! Run in release mode: `cargo run --release -p chull-bench --bin experiments -- all`

use chull_bench::{harmonic, prepared_ball_3d, prepared_ball_d, prepared_disk_2d, time_median};
use chull_confspace::clarkson_shor::clarkson_shor_report;
use chull_confspace::depgraph::build_dep_graph;
use chull_confspace::instances::hull2d::Hull2dSpace;
use chull_confspace::space::{check_support, ConfigurationSpace, SupportCheck};
use chull_core::baseline::{monotone_chain, quickhull2d};
use chull_core::degenerate::CornerSpace;
use chull_core::par::rounds::{rounds_hull, rounds_hull_from};
use chull_core::par::{parallel_hull, MapKind, ParOptions};
use chull_core::seq::incremental_hull_run;
use chull_core::{prepare_points, HullStats};
use chull_geometry::{generators, Point2i, Point3i, PointSet};

struct Config {
    fast: bool,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fast = args.iter().any(|a| a == "--fast");
    let cfg = Config { fast };
    let wanted: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|s| s.to_lowercase())
        .collect();
    let all = wanted.is_empty() || wanted.iter().any(|w| w == "all");
    let run = |id: &str| all || wanted.iter().any(|w| w == id);

    if run("e1") {
        e1_dependence_depth(&cfg);
    }
    if run("e2") {
        e2_rounds_and_recursion(&cfg);
    }
    if run("e3") {
        e3_work_efficiency(&cfg);
    }
    if run("e4") {
        e4_figure1();
    }
    if run("e5") {
        e5_two_support(&cfg);
    }
    if run("e6") {
        e6_degenerate(&cfg);
    }
    if run("e7") {
        e7_applications(&cfg);
    }
    if run("e8") {
        e8_clarkson_shor(&cfg);
    }
    if run("e9") {
        e9_table1();
    }
    if run("e10") {
        e10_ridge_maps(&cfg);
    }
    if run("e11") {
        e11_runtimes(&cfg);
    }
    if run("e12") {
        e12_ablations(&cfg);
    }
    if run("e13") {
        e13_history_search(&cfg);
    }
    if run("e14") {
        e14_trapezoid_negative(&cfg);
    }
    if run("e15") {
        e15_workload_characterization(&cfg);
    }
}

// ---------------------------------------------------------------- E15

/// Workload characterization: hull sizes and created-facet counts per
/// distribution (context for E3/E11 — e.g. why 2D-disk hulls are tiny).
fn e15_workload_characterization(cfg: &Config) {
    use chull_bench::{prepared_parabola_2d, prepared_sphere_3d};
    println!("\n== E15: workload characterization (hull sizes per distribution) ==");
    println!(
        "  {:<18} {:>4} {:>8} {:>10} {:>12} {:>10}",
        "distribution", "d", "n", "hull", "created", "tests"
    );
    let n2: usize = if cfg.fast { 10_000 } else { 50_000 };
    let n3: usize = if cfg.fast { 5_000 } else { 20_000 };
    let rows: Vec<(&str, PointSet)> = vec![
        ("disk (uniform)", prepared_disk_2d(n2, 1)),
        ("near-circle", {
            prepare_points(
                &PointSet::from_points2(&generators::near_circle_2d(n2 / 5, 1 << 24, 2)),
                3,
            )
        }),
        ("parabola (convex)", prepared_parabola_2d(n2 / 5, 4)),
        ("ball (uniform)", prepared_ball_3d(n3, 5)),
        ("near-sphere", prepared_sphere_3d(n3 / 4, 6)),
        ("paraboloid", {
            prepare_points(
                &PointSet::from_points3(&generators::paraboloid_3d(n3 / 4, 1 << 12, 7)),
                8,
            )
        }),
    ];
    for (name, pts) in rows {
        let run = incremental_hull_run(&pts);
        println!(
            "  {:<18} {:>4} {:>8} {:>10} {:>12} {:>10}",
            name,
            pts.dim(),
            pts.len(),
            run.stats.hull_facets,
            run.stats.facets_created,
            run.stats.visibility_tests
        );
    }
}

// ---------------------------------------------------------------- E13

/// History/influence-graph point location (Section 4 discussion):
/// expected search cost O(log n) per query.
fn e13_history_search(cfg: &Config) {
    use chull_core::history::HullHistory;
    println!("\n== E13: history-graph point location (Section 4, history graphs) ==");
    println!("  queries drawn from the point distribution behave like the (n+1)-st");
    println!("  random point: O(log n) expected visits. Far-outside queries see");
    println!("  Theta(hull) facets by definition — shown for contrast.");
    println!(
        "  {:>9} {:>14} {:>12} {:>12} {:>14}",
        "n", "in-dist visits", "(/H_n)", "max", "far-out visits"
    );
    let exps: Vec<u32> = if cfg.fast {
        vec![10, 12]
    } else {
        vec![10, 12, 14, 16]
    };
    for e in exps {
        let n = 1usize << e;
        let pts = prepared_disk_2d(n, 500 + e as u64);
        let run = incremental_hull_run(&pts);
        let h = HullHistory::from_run(&pts, &run);
        let mut rng = generators::rng(9);
        let queries = if cfg.fast { 100 } else { 400 };
        let radius = 1i64 << 30; // the generator's disk radius
        let (mut total_in, mut max_in, mut total_far) = (0usize, 0usize, 0usize);
        let mut count_in = 0usize;
        for _ in 0..queries {
            let q = [
                rng.gen_range(-radius..radius),
                rng.gen_range(-radius..radius),
            ];
            if (q[0] as i128) * (q[0] as i128) + (q[1] as i128) * (q[1] as i128)
                <= (radius as i128) * (radius as i128)
            {
                let v = h.locate(&q).nodes_visited;
                total_in += v;
                max_in = max_in.max(v);
                count_in += 1;
            }
            let far = [q[0] * 4, q[1] * 4];
            total_far += h.locate(&far).nodes_visited;
        }
        let mean_in = total_in as f64 / count_in as f64;
        println!(
            "  {:>9} {:>14.1} {:>12.2} {:>12} {:>14.1}",
            n,
            mean_in,
            mean_in / harmonic(n),
            max_in,
            total_far as f64 / queries as f64
        );
    }
}

// ---------------------------------------------------------------- E14

/// The paper's negative claim: trapezoidal decomposition has no constant
/// support (Section 4 / Conclusion) — minimum support sizes grow with n.
fn e14_trapezoid_negative(cfg: &Config) {
    use chull_confspace::instances::trapezoid::merge_family;
    println!("\n== E14: no constant support for trapezoidal decomposition ==");
    println!("  merged face below the long segment; exact minimum support size:");
    println!("  {:>5} {:>13} {:>13}", "k", "n (segments)", "min support");
    let ks: Vec<usize> = if cfg.fast {
        vec![1, 2, 4]
    } else {
        vec![1, 2, 4, 6, 8]
    };
    for k in ks {
        let fam = merge_family(k);
        let faces = fam.space.decompose(&fam.y);
        let below = *faces
            .iter()
            .find(|f| f.top == Some(fam.long))
            .expect("merged face below L");
        let min = fam
            .space
            .min_support_size(&fam.y, &below, fam.long)
            .expect("support exists");
        println!("  {:>5} {:>13} {:>13}", k, 2 * k + 1, min);
    }
    println!("  (contrast: convex hull support sets have size <= 2, Theorem 5.1)");
}

fn seq_stats(pts: &PointSet) -> HullStats {
    incremental_hull_run(pts).stats
}

// ---------------------------------------------------------------- E1

/// Theorem 1.1 / 4.2: dependence depth O(log n) whp.
fn e1_dependence_depth(cfg: &Config) {
    println!("\n== E1: configuration dependence depth (Theorems 1.1, 4.2) ==");
    println!("depth of G(S) for random insertion orders; theorem: < sigma*H_n whp,");
    println!(
        "sigma = g*k*e^2 (2D: {:.1}).",
        2.0 * 2.0 * std::f64::consts::E.powi(2)
    );
    let seeds: u64 = if cfg.fast { 3 } else { 5 };
    for (dim, exps) in [
        (
            2usize,
            if cfg.fast {
                vec![10u32, 12, 14]
            } else {
                vec![10, 12, 14, 16, 17]
            },
        ),
        (
            3,
            if cfg.fast {
                vec![10, 12]
            } else {
                vec![10, 12, 14, 15]
            },
        ),
        (
            5,
            if cfg.fast {
                vec![8, 9]
            } else {
                vec![8, 9, 10, 11]
            },
        ),
    ] {
        println!("\n  d = {dim} (uniform in a ball):");
        println!(
            "  {:>9} {:>10} {:>10} {:>10} {:>12}",
            "n", "mean depth", "max depth", "H_n", "max/H_n"
        );
        for e in exps {
            let n = 1usize << e;
            let mut depths = Vec::new();
            for s in 0..seeds {
                let pts = match dim {
                    2 => prepared_disk_2d(n, s * 100 + e as u64),
                    3 => prepared_ball_3d(n, s * 100 + e as u64),
                    d => prepared_ball_d(d, n, s * 100 + e as u64),
                };
                depths.push(seq_stats(&pts).dep_depth);
            }
            let mean = depths.iter().sum::<u64>() as f64 / depths.len() as f64;
            let max = *depths.iter().max().unwrap();
            let hn = harmonic(n);
            println!(
                "  {:>9} {:>10.1} {:>10} {:>10.2} {:>12.2}",
                n,
                mean,
                max,
                hn,
                max as f64 / hn
            );
        }
    }

    // Tail shape at fixed n.
    let n = 1 << 10;
    let trials = if cfg.fast { 20 } else { 60 };
    let hn = harmonic(n);
    let mut depths = Vec::new();
    for s in 0..trials {
        depths.push(seq_stats(&prepared_disk_2d(n, 9000 + s)).dep_depth as f64);
    }
    println!("\n  tail at n = {n} over {trials} orders (2D):");
    for sigma in [2.0f64, 3.0, 4.0, 6.0] {
        let frac = depths.iter().filter(|&&d| d >= sigma * hn).count() as f64 / depths.len() as f64;
        println!("    Pr[depth >= {sigma:.0} H_n] ~ {frac:.3}");
    }
}

// ---------------------------------------------------------------- E2

/// Theorem 5.3: ProcessRidge recursion depth; Theorem 5.4: rounds.
fn e2_rounds_and_recursion(cfg: &Config) {
    println!("\n== E2: ProcessRidge recursion depth and synchronous rounds (Thm 5.3/5.4) ==");
    println!(
        "  {:>4} {:>9} {:>10} {:>10} {:>10} {:>10}",
        "d", "n", "dep depth", "recursion", "rounds", "rounds/H_n"
    );
    let exps2: Vec<u32> = if cfg.fast {
        vec![10, 12, 14]
    } else {
        vec![10, 12, 14, 16]
    };
    let exps3: Vec<u32> = if cfg.fast {
        vec![10, 12]
    } else {
        vec![10, 12, 14]
    };
    for (dim, exps) in [(2usize, exps2), (3, exps3)] {
        for e in exps {
            let n = 1usize << e;
            let pts = if dim == 2 {
                prepared_disk_2d(n, e as u64)
            } else {
                prepared_ball_3d(n, e as u64)
            };
            let seq = incremental_hull_run(&pts);
            let par = parallel_hull(&pts, ParOptions::default());
            let rr = rounds_hull(&pts, false);
            println!(
                "  {:>4} {:>9} {:>10} {:>10} {:>10} {:>10.2}",
                dim,
                n,
                seq.stats.dep_depth,
                par.stats.recursion_depth,
                rr.stats.rounds,
                rr.stats.rounds as f64 / harmonic(n)
            );
        }
    }
}

// ---------------------------------------------------------------- E3

/// Theorems 5.4/5.5: work-efficiency — same tests, same facets.
fn e3_work_efficiency(cfg: &Config) {
    println!("\n== E3: work efficiency (Theorems 5.4/5.5) ==");
    println!("Algorithm 3 must perform exactly the sequential algorithm's work.");
    println!(
        "  {:>4} {:>9} {:>12} {:>12} {:>6} {:>11} {:>13}",
        "d", "n", "seq tests", "par tests", "same?", "facets", "tests/(n ln n)"
    );
    let exps2: Vec<u32> = if cfg.fast {
        vec![12, 14]
    } else {
        vec![12, 14, 16, 17]
    };
    let exps3: Vec<u32> = if cfg.fast {
        vec![11, 13]
    } else {
        vec![11, 13, 15]
    };
    for (dim, exps) in [(2usize, exps2), (3, exps3)] {
        for e in exps {
            let n = 1usize << e;
            let pts = if dim == 2 {
                prepared_disk_2d(n, 7 + e as u64)
            } else {
                prepared_ball_3d(n, 7 + e as u64)
            };
            let seq = incremental_hull_run(&pts);
            let par = parallel_hull(&pts, ParOptions::default());
            let mut a = seq.created.clone();
            let mut b = par.created.clone();
            a.sort_unstable();
            b.sort_unstable();
            println!(
                "  {:>4} {:>9} {:>12} {:>12} {:>6} {:>11} {:>13.2}",
                dim,
                n,
                seq.stats.visibility_tests,
                par.stats.visibility_tests,
                if seq.stats.visibility_tests == par.stats.visibility_tests && a == b {
                    "yes"
                } else {
                    "NO!"
                },
                seq.stats.facets_created,
                seq.stats.visibility_tests as f64 / (n as f64 * (n as f64).ln())
            );
        }
    }
}

// ---------------------------------------------------------------- E4

/// Figure 1: the worked 2D example, round by round.
fn e4_figure1() {
    println!("\n== E4: Figure 1 walkthrough ==");
    let names = ["u", "v", "w", "x", "y", "z", "t", "a", "b", "c"];
    let pts = PointSet::from_rows(
        2,
        &[
            vec![0, 0],
            vec![0, 10],
            vec![4, 14],
            vec![9, 15],
            vec![14, 13],
            vec![17, 8],
            vec![12, -3],
            vec![15, 16],
            vec![10, 18],
            vec![10, 50],
        ],
    );
    let run = rounds_hull_from(&pts, 7, true);
    let mut last = 0;
    for (round, ev) in &run.trace {
        if *round != last {
            println!("  --- round {round} ---");
            last = *round;
        }
        println!("    {}", ev.render(&names));
    }
    println!("  rounds: {} (paper: 3)", run.stats.rounds);
}

// ---------------------------------------------------------------- E5

/// Theorem 5.1 / Figure 2: 2-support verified by brute force.
fn e5_two_support(cfg: &Config) {
    println!("\n== E5: 2-support for convex hull (Theorem 5.1, Figure 2) ==");
    let seeds: u64 = if cfg.fast { 2 } else { 5 };
    let n = 24;
    let mut checked = 0usize;
    for seed in 0..seeds {
        let pts = generators::disk_2d(n, 1 << 20, seed + 70);
        let space = Hull2dSpace::new(pts);
        let order = generators::random_permutation(n, seed);
        for i in space.base_size()..=n {
            let prefix = &order[..i];
            for pi in space.active_configs(prefix) {
                for x in space.defining_set(&pi) {
                    if prefix[..space.base_size()].contains(&x) {
                        continue;
                    }
                    let res = check_support(&space, prefix, &pi, x);
                    assert_eq!(res, SupportCheck::Valid, "{pi:?}, x={x}");
                    checked += 1;
                }
            }
        }
    }
    println!(
        "  checked {checked} (config, defining-point) pairs across {seeds} random orders \
         of {n} points: all have valid 2-support."
    );
}

// ---------------------------------------------------------------- E6

/// Section 6: degenerate 3D inputs via the corner configuration space.
fn e6_degenerate(cfg: &Config) {
    println!("\n== E6: degeneracy — corner configuration space (Section 6) ==");
    let grid = generators::grid_3d(3, 1);
    let space = CornerSpace::new(grid.clone());
    let objs: Vec<usize> = (0..grid.len()).collect();
    let corners = space.active_configs(&objs);
    println!(
        "  3x3x3 grid ({} points, maximally degenerate): {} hull corners \
         (Lemma 6.1: = 8 cube vertices x 3 faces = 24)",
        grid.len(),
        corners.len()
    );

    // 4-support checks along a random order (Lemma 6.2).
    let (shuffled, order) = prepare_degenerate_order(&grid, 5);
    let space = CornerSpace::new(shuffled);
    let prefixes: Vec<usize> = if cfg.fast {
        vec![8, 12]
    } else {
        vec![6, 10, 14, 18]
    };
    let mut checked = 0usize;
    for &i in &prefixes {
        let prefix = &order[..i];
        for pi in space.active_configs(prefix) {
            for x in space.defining_set(&pi) {
                if prefix[..4].contains(&x) {
                    continue;
                }
                assert_eq!(check_support(&space, prefix, &pi, x), SupportCheck::Valid);
                checked += 1;
            }
        }
    }
    println!("  Lemma 6.2: {checked} corner/point pairs checked at prefixes {prefixes:?}: all 4-supported.");

    // Dependence depth on degenerate input.
    let stats = build_dep_graph(&space, &order, false);
    println!(
        "  corner dependence depth on the grid: {} (H_n = {:.1}, depth/H_n = {:.2}; \
         theorem constant g*k*e^2 = {:.0})",
        stats.depth,
        harmonic(order.len()),
        stats.depth as f64 / harmonic(order.len()),
        3.0 * 4.0 * std::f64::consts::E.powi(2)
    );

    let faces = generators::cube_faces_3d(if cfg.fast { 24 } else { 40 }, 16, 3);
    let (shuffled, order) = prepare_degenerate_order(&faces, 8);
    let space = CornerSpace::new(shuffled);
    let stats = build_dep_graph(&space, &order, false);
    println!(
        "  corner dependence depth on {} cube-face points: {} (depth/H_n = {:.2})",
        faces.len(),
        stats.depth,
        stats.depth as f64 / harmonic(order.len())
    );
}

fn prepare_degenerate_order(points: &[Point3i], seed: u64) -> (Vec<Point3i>, Vec<usize>) {
    use chull_geometry::exact::affine_rank;
    let perm = generators::random_permutation(points.len(), seed);
    let shuffled: Vec<Point3i> = perm.iter().map(|&i| points[i]).collect();
    let mut chosen: Vec<usize> = Vec::new();
    for i in 0..shuffled.len() {
        let coords: Vec<[i64; 3]> = chosen.iter().map(|&c| shuffled[c].coords()).collect();
        let mut rows: Vec<&[i64]> = coords.iter().map(|c| c.as_slice()).collect();
        let cand = shuffled[i].coords();
        rows.push(&cand);
        if affine_rank(&rows) == rows.len() {
            chosen.push(i);
            if chosen.len() == 4 {
                break;
            }
        }
    }
    let mut order = chosen.clone();
    order.extend((0..shuffled.len()).filter(|i| !chosen.contains(i)));
    (shuffled, order)
}

// ---------------------------------------------------------------- E7

/// Section 7: half-space intersection and unit-circle intersection.
fn e7_applications(cfg: &Config) {
    use chull_apps::circles::{incremental_intersection, random_circles, verify_intersection};
    use chull_apps::halfspace::{random_halfplanes, HalfplaneSpace};
    use chull_geometry::rng::SliceRandom;

    println!("\n== E7: other k-support applications (Section 7) ==");
    println!("  half-plane intersection (2-support):");
    println!(
        "  {:>7} {:>9} {:>8} {:>10}",
        "n", "vertices", "depth", "depth/H_n"
    );
    let sizes: Vec<usize> = if cfg.fast {
        vec![32, 64]
    } else {
        vec![32, 64, 128, 192]
    };
    for n in sizes {
        let hs = random_halfplanes(n, n as u64);
        let space = HalfplaneSpace::new(hs);
        let mut order: Vec<usize> = (3..n).collect();
        order.shuffle(&mut generators::rng(n as u64 + 1));
        let mut full = vec![0, 1, 2];
        full.extend(order);
        let stats = build_dep_graph(&space, &full, false);
        let objs: Vec<usize> = (0..n).collect();
        println!(
            "  {:>7} {:>9} {:>8} {:>10.2}",
            n,
            space.polygon_vertices(&objs).len(),
            stats.depth,
            stats.depth as f64 / harmonic(n)
        );
    }

    println!("\n  unit-circle intersection (arc clipping, 2-support):");
    println!(
        "  {:>7} {:>8} {:>10} {:>10} {:>10}",
        "n", "arcs", "created", "depth", "depth/H_n"
    );
    let sizes: Vec<usize> = if cfg.fast {
        vec![64, 256]
    } else {
        vec![64, 256, 1024, 4096]
    };
    for n in sizes {
        let circles = random_circles(n, 0.45, n as u64);
        let r = incremental_intersection(&circles);
        verify_intersection(&r).expect("circle intersection verification");
        println!(
            "  {:>7} {:>8} {:>10} {:>10} {:>10.2}",
            n,
            r.arcs.len(),
            r.arcs_created,
            r.max_depth,
            r.max_depth as f64 / harmonic(n)
        );
    }

    println!("\n  Delaunay via lifting (3D hull application):");
    let n = if cfg.fast { 500 } else { 3000 };
    let pts = generators::disk_2d(n, 1 << 20, 12);
    let del = chull_apps::delaunay::delaunay(&pts, chull_apps::delaunay::Engine::Parallel, 4);
    chull_apps::delaunay::verify_delaunay(&pts, &del).expect("Delaunay verification");
    println!(
        "  {} points -> {} triangles; empty-circumcircle verified exactly.",
        n,
        del.triangles.len()
    );
}

// ---------------------------------------------------------------- E8

/// Theorem 3.1: Clarkson–Shor total conflict size.
fn e8_clarkson_shor(cfg: &Config) {
    println!("\n== E8: Clarkson–Shor total conflict size (Theorem 3.1) ==");
    println!("  measured sum |C(pi)| over created configs vs bound n g^2 sum |T_i|/i^2");
    println!(
        "  {:>7} {:>12} {:>12} {:>8}",
        "n", "measured", "bound", "ratio"
    );
    let sizes: Vec<usize> = if cfg.fast {
        vec![48, 96]
    } else {
        vec![48, 96, 160, 256]
    };
    for n in sizes {
        let pts = generators::disk_2d(n, 1 << 20, n as u64);
        let space = Hull2dSpace::new(pts);
        let order = generators::random_permutation(n, n as u64 + 5);
        let stats = build_dep_graph(&space, &order, false);
        let report = clarkson_shor_report(&stats, space.max_degree(), space.base_size());
        println!(
            "  {:>7} {:>12} {:>12.0} {:>8.3}",
            n, report.measured_total_conflicts, report.bound, report.ratio
        );
    }
}

// ---------------------------------------------------------------- E9

/// Table 1: the configuration-space parameter map, as implemented.
fn e9_table1() {
    println!("\n== E9: Table 1 — configuration-space parameters as implemented ==");
    println!(
        "  {:<34} {:>3} {:>3} {:>4} {:>3}",
        "space", "g", "c", "nb", "k"
    );
    let hull2 = Hull2dSpace::new(generators::disk_2d(8, 1 << 16, 0));
    println!(
        "  {:<34} {:>3} {:>3} {:>4} {:>3}",
        "2D hull facets (Sec 5)",
        hull2.max_degree(),
        hull2.multiplicity(),
        hull2.base_size(),
        hull2.support_bound()
    );
    let corner = CornerSpace::new(generators::ball_3d(8, 1 << 16, 0));
    println!(
        "  {:<34} {:>3} {:>3} {:>4} {:>3}",
        "3D corner space (Sec 6)",
        corner.max_degree(),
        corner.multiplicity(),
        corner.base_size(),
        corner.support_bound()
    );
    let hp =
        chull_apps::halfspace::HalfplaneSpace::new(chull_apps::halfspace::random_halfplanes(8, 0));
    println!(
        "  {:<34} {:>3} {:>3} {:>4} {:>3}",
        "half-plane intersection (Sec 7)",
        hp.max_degree(),
        hp.multiplicity(),
        hp.base_size(),
        hp.support_bound()
    );
    let sp = chull_confspace::instances::sorted_pairs::SortedPairsSpace::new(8);
    println!(
        "  {:<34} {:>3} {:>3} {:>4} {:>3}",
        "sorted-pairs toy space",
        sp.max_degree(),
        sp.multiplicity(),
        sp.base_size(),
        sp.support_bound()
    );
    println!("  (paper Table 1 for d-dim hulls: g = d, c = 2, nb = d+1, k = 2)");
}

// ---------------------------------------------------------------- E10

/// Algorithms 4 and 5: the lock-free InsertAndSet multimaps.
fn e10_ridge_maps(cfg: &Config) {
    use chull_concurrent::{RidgeMapCas, RidgeMapLocked, RidgeMapTas};
    println!("\n== E10: InsertAndSet / GetValue engines (Algorithms 4, 5) ==");
    let keys: usize = if cfg.fast { 1 << 16 } else { 1 << 19 };

    fn bench_map<F: Fn(u64, u32) -> bool, G: Fn(u64, u32) -> u32>(
        name: &str,
        keys: usize,
        insert: F,
        get: G,
    ) {
        let t0 = std::time::Instant::now();
        let mut losers = 0usize;
        for k in 0..keys as u64 {
            assert!(insert(k, (2 * k) as u32));
        }
        for k in 0..keys as u64 {
            if !insert(k, (2 * k + 1) as u32) {
                losers += 1;
                assert_eq!(get(k, (2 * k + 1) as u32), (2 * k) as u32);
            }
        }
        let dt = t0.elapsed().as_secs_f64();
        assert_eq!(losers, keys, "exactly one loser per key");
        println!(
            "  {:<22} {:>10.1} ns/op  ({} keys, one loser per key verified)",
            name,
            dt / (2.0 * keys as f64) * 1e9,
            keys
        );
    }

    let cas: RidgeMapCas<u64> = RidgeMapCas::with_capacity(keys);
    bench_map(
        "CAS (Algorithm 4)",
        keys,
        |k, v| cas.insert_and_set(k, v),
        |k, n| cas.get_value(k, n),
    );
    let tas: RidgeMapTas<u64> = RidgeMapTas::with_capacity(keys);
    bench_map(
        "TAS (Algorithm 5)",
        keys,
        |k, v| tas.insert_and_set(k, v),
        |k, n| tas.get_value(k, n),
    );
    let locked: RidgeMapLocked<u64> = RidgeMapLocked::with_capacity(keys);
    bench_map(
        "sharded locked",
        keys,
        |k, v| locked.insert_and_set(k, v),
        |k, n| locked.get_value(k, n),
    );
}

// ---------------------------------------------------------------- E11

/// Runtime comparison across algorithms and thread counts.
fn e11_runtimes(cfg: &Config) {
    println!("\n== E11: wall-clock runtimes (single machine; see EXPERIMENTS.md note) ==");
    let n: usize = if cfg.fast { 50_000 } else { 200_000 };
    let reps = if cfg.fast { 1 } else { 3 };
    let pts2 = prepared_disk_2d(n, 21);
    let raw2: Vec<Point2i> = (0..pts2.len())
        .map(|i| Point2i::new(pts2.point(i)[0], pts2.point(i)[1]))
        .collect();

    println!("  2D, {n} points uniform in a disk:");
    let t = time_median(reps, || {
        std::hint::black_box(monotone_chain::hull_indices(&raw2));
    });
    println!(
        "    {:<28} {:>9.1} ms",
        "monotone chain (baseline)",
        t * 1e3
    );
    let t = time_median(reps, || {
        std::hint::black_box(quickhull2d::hull_indices(&raw2));
    });
    println!("    {:<28} {:>9.1} ms", "quickhull (baseline)", t * 1e3);
    let t = time_median(reps, || {
        std::hint::black_box(incremental_hull_run(&pts2));
    });
    println!("    {:<28} {:>9.1} ms", "incremental seq (Alg 2)", t * 1e3);
    let t = time_median(reps, || {
        std::hint::black_box(parallel_hull(&pts2, ParOptions::default()));
    });
    println!(
        "    {:<28} {:>9.1} ms   ({} pool threads)",
        "incremental par (Alg 3)",
        t * 1e3,
        chull_concurrent::pool::default_threads()
    );

    let n3 = if cfg.fast { 20_000 } else { 100_000 };
    let pts3 = prepared_ball_3d(n3, 22);
    println!("  3D, {n3} points uniform in a ball:");
    let t = time_median(reps, || {
        std::hint::black_box(incremental_hull_run(&pts3));
    });
    println!("    {:<28} {:>9.1} ms", "incremental seq (Alg 2)", t * 1e3);
    let t = time_median(reps, || {
        std::hint::black_box(parallel_hull(&pts3, ParOptions::default()));
    });
    println!("    {:<28} {:>9.1} ms", "incremental par (Alg 3)", t * 1e3);
}

// ---------------------------------------------------------------- E12

/// Ablations: support sets off, map engines, insertion order.
fn e12_ablations(cfg: &Config) {
    println!("\n== E12: ablations ==");

    // (a) Support-set pruning vs naive "wait for everything the pivot
    // touches" dependences.
    println!("  (a) dependence depth: support sets (paper) vs naive synchronous waits");
    println!(
        "  {:>9} {:>14} {:>13} {:>8}",
        "n", "support depth", "naive depth", "ratio"
    );
    let exps: Vec<u32> = if cfg.fast {
        vec![10, 12, 14]
    } else {
        vec![10, 12, 14, 16]
    };
    for e in exps {
        let n = 1usize << e;
        let pts = prepared_disk_2d(n, 300 + e as u64);
        let s = seq_stats(&pts);
        println!(
            "  {:>9} {:>14} {:>13} {:>8.2}",
            n,
            s.dep_depth,
            s.naive_dep_depth,
            s.naive_dep_depth as f64 / s.dep_depth as f64
        );
    }

    // (b) Map engines inside Algorithm 3. The fixed-capacity lock-free
    // tables are sized a priori (as in the paper, whose analysis bounds the
    // ridge count); their time includes zero-initializing that worst-case
    // table, which dominates on small-hull inputs — see E10 for pure
    // per-operation costs.
    println!("\n  (b) Algorithm 3 with each InsertAndSet engine (2D, n = 100k):");
    let n = if cfg.fast { 30_000 } else { 100_000 };
    let pts = prepared_disk_2d(n, 44);
    let reps = if cfg.fast { 1 } else { 3 };
    for (name, kind) in [
        ("locked (sharded)", MapKind::Locked),
        ("CAS (Algorithm 4)", MapKind::Cas { capacity_factor: 2 }),
        ("TAS (Algorithm 5)", MapKind::Tas { capacity_factor: 2 }),
    ] {
        let t = time_median(reps, || {
            std::hint::black_box(parallel_hull(
                &pts,
                ParOptions {
                    map: kind,
                    record_trace: false,
                },
            ));
        });
        println!("    {:<22} {:>9.1} ms", name, t * 1e3);
    }

    // (c) Random vs sorted insertion order.
    println!("\n  (c) insertion order (2D disk): random vs sorted by x");
    println!("  {:>9} {:>13} {:>13}", "n", "random depth", "sorted depth");
    let exps: Vec<u32> = if cfg.fast {
        vec![10, 12]
    } else {
        vec![10, 12, 14]
    };
    for e in exps {
        let n = 1usize << e;
        let mut points = generators::disk_2d(n, 1 << 24, 400 + e as u64);
        let random = seq_stats(&prepare_points(&PointSet::from_points2(&points), 1));
        points.sort();
        let ps = PointSet::from_points2(&points);
        let simplex = chull_core::context::initial_simplex(&ps);
        let chosen: Vec<usize> = simplex.iter().map(|&v| v as usize).collect();
        let mut order = chosen.clone();
        order.extend((0..ps.len()).filter(|i| !chosen.contains(i)));
        let sorted = seq_stats(&ps.permuted(&order));
        println!(
            "  {:>9} {:>13} {:>13}",
            n, random.dep_depth, sorted.dep_depth
        );
    }
}
