//! Exact arithmetic substrates: big integers, fraction-free determinants,
//! and floating-point expansion arithmetic.

pub mod bigint;
pub mod det;
pub mod expansion;

pub use bigint::{BigInt, Sign};
pub use det::{
    affine_rank, det_i128_bigint, det_i128_checked, det_i64, det_sign_i128, det_sign_i64, rank_i64,
};
pub use expansion::{det_sign_exact, Expansion};
