//! Predicate kernel microbenchmarks: the exact integer fast paths, the
//! arbitrary-precision fallbacks, the filtered float predicates — and the
//! headline comparison of the **staged visibility kernel** (cached exact
//! hyperplane + f64 filter + i128/BigInt fallback) against the naive
//! per-query `O(d^3)` determinant it replaced on the hull hot path.
//!
//! Writes a machine-readable snapshot to `BENCH_predicates.json` in the
//! current directory (the repo root under `cargo bench`).

use chull_bench::harness::{black_box, Bench};
use chull_geometry::exact::det_sign_i64;
use chull_geometry::predicates::{self, float, orientd};
use chull_geometry::rng::ChaCha8Rng;
use chull_geometry::{
    Hyperplane, KernelCounts, PlaneBlock, Point2f, Point2i, Point3f, Point3i, Sign,
};

/// `queries` random points in a `dim`-ball plus one facet's worth of
/// defining points, mirroring a conflict-list scan in the hull.
fn visibility_workload(dim: usize, queries: usize, seed: u64) -> (Vec<Vec<i64>>, Vec<Vec<i64>>) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let coord = |rng: &mut ChaCha8Rng| rng.gen_range(-(1i64 << 28)..(1i64 << 28));
    let facet: Vec<Vec<i64>> = (0..dim)
        .map(|_| (0..dim).map(|_| coord(&mut rng)).collect())
        .collect();
    let qs: Vec<Vec<i64>> = (0..queries)
        .map(|_| (0..dim).map(|_| coord(&mut rng)).collect())
        .collect();
    (facet, qs)
}

fn bench_staged_vs_naive(b: &mut Bench, dim: usize) {
    let (facet, queries) = visibility_workload(dim, 256, 42 + dim as u64);
    let rows: Vec<&[i64]> = facet.iter().map(|r| r.as_slice()).collect();

    // Naive reference: one O(d^3) determinant per query, exactly what the
    // hull's visibility test used to do.
    b.bench(&format!("visibility_naive_orientd_{dim}d"), || {
        let mut acc = 0i32;
        for q in &queries {
            let mut m: Vec<&[i64]> = rows.clone();
            m.push(q);
            acc += orientd(dim, &m).as_i32();
        }
        acc
    });

    // Staged kernel: hyperplane cached once (amortized over every test the
    // facet ever serves), each query an O(d) filtered dot product.
    let plane = Hyperplane::new(dim, &rows);
    b.bench(&format!("visibility_staged_plane_{dim}d"), || {
        let mut counts = KernelCounts::default();
        let mut acc = 0i32;
        for q in &queries {
            acc += plane.sign_point(q, &mut counts).as_i32();
        }
        black_box(counts);
        acc
    });

    // Construction cost, for the amortization story: one plane build vs the
    // conflict-list scans it pays for.
    b.bench(&format!("hyperplane_construction_{dim}d"), || {
        Hyperplane::new(dim, &rows)
    });
}

/// `n` non-degenerate random facet planes, for the snapshot-wide scans.
fn random_planes(dim: usize, n: usize, seed: u64) -> Vec<Hyperplane> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let coord = |rng: &mut ChaCha8Rng| rng.gen_range(-(1i64 << 20)..(1i64 << 20));
    let mut planes = Vec::with_capacity(n);
    while planes.len() < n {
        let pts: Vec<Vec<i64>> = (0..dim)
            .map(|_| (0..dim).map(|_| coord(&mut rng)).collect())
            .collect();
        let rows: Vec<&[i64]> = pts.iter().map(|p| p.as_slice()).collect();
        let mut probe = vec![0i64; dim];
        probe[0] = 1 << 21;
        let mut all = rows.clone();
        all.push(&probe);
        if orientd(dim, &all) == Sign::Zero {
            continue;
        }
        planes.push(Hyperplane::new(dim, &rows));
    }
    planes
}

/// The batched snapshot filter: one query against `n` facet planes, as a
/// per-facet staged scan (AoS, plane by plane) vs the SoA [`PlaneBlock`]
/// coefficient-major scan with the identical exact fallback on ambiguous
/// lanes. Same decisions, different memory walk — this is the E21 kernel
/// under the service read path.
fn bench_block_vs_perfacet(b: &mut Bench, dim: usize, n: usize) {
    let planes = random_planes(dim, n, 9000 + dim as u64);
    let block = PlaneBlock::from_planes(dim, planes.iter());
    let mut rng = ChaCha8Rng::seed_from_u64(77 + dim as u64);
    let queries: Vec<Vec<i64>> = (0..32)
        .map(|_| {
            (0..dim)
                .map(|_| rng.gen_range(-(1i64 << 20)..(1i64 << 20)))
                .collect()
        })
        .collect();

    b.bench(&format!("plane_scan_perfacet_{dim}d_{n}f"), || {
        let mut counts = KernelCounts::default();
        let mut acc = 0i32;
        for q in &queries {
            for p in &planes {
                acc += p.sign_point(q, &mut counts).as_i32();
            }
        }
        black_box(counts);
        acc
    });

    b.bench(&format!("plane_scan_soa_block_{dim}d_{n}f"), || {
        let mut counts = KernelCounts::default();
        let mut acc = 0i32;
        for q in &queries {
            block.filter_scan(q, |i, s| {
                acc += match s {
                    Some(sign) => sign.as_i32(),
                    None => planes[i as usize].sign_exact(q, &mut counts).as_i32(),
                };
            });
        }
        black_box(counts);
        acc
    });
}

fn main() {
    let mut b = Bench::new();

    let a2 = Point2i::new(12345, -6789);
    let b2 = Point2i::new(-4242, 9001);
    let c2 = Point2i::new(777, 31337);
    b.bench("orient2d_i64", || predicates::orient2d(a2, b2, c2));

    let a3 = Point3i::new(1, 2, 3);
    let b3 = Point3i::new(-7, 11, 5);
    let c3 = Point3i::new(13, -17, 19);
    let d3 = Point3i::new(23, 29, -31);
    b.bench("orient3d_i64_fast", || predicates::orient3d(a3, b3, c3, d3));

    let big = 1i64 << 45; // beyond the i128 fast-path limit
    let a3b = Point3i::new(big, big + 2, big + 3);
    let b3b = Point3i::new(big - 7, big + 11, big + 5);
    let c3b = Point3i::new(big + 13, big - 17, big + 19);
    let d3b = Point3i::new(big + 23, big + 29, big - 31);
    b.bench("orient3d_i64_bareiss", || {
        predicates::orient3d(a3b, b3b, c3b, d3b)
    });

    let rows5: Vec<Vec<i64>> = vec![
        vec![3, 1, 4, 1, 5],
        vec![9, 2, 6, 5, 3],
        vec![5, 8, 9, 7, 9],
        vec![3, 2, 3, 8, 4],
        vec![6, 2, 6, 4, 3],
    ];
    b.bench("det5_bareiss", || det_sign_i64(&rows5));

    let fa = Point2f::new(0.1, 0.2);
    let fb = Point2f::new(3.4, -1.2);
    let fc = Point2f::new(-5.0, 2.2);
    b.bench("orient2d_f64_filtered", || float::orient2d(fa, fb, fc));

    // Near-degenerate: forces the exact expansion fallback.
    let ga = Point2f::new(12.0, 12.0);
    let gb = Point2f::new(24.0, 24.0);
    let gq = Point2f::new(0.5 + f64::EPSILON, 0.5);
    b.bench("orient2d_f64_exact_fallback", || {
        float::orient2d(gq, ga, gb)
    });

    let pa = Point3f::new(0.0, 0.0, 0.0);
    let pb = Point3f::new(1.0, 0.0, 0.0);
    let pc = Point3f::new(0.0, 1.0, 0.0);
    let pd = Point3f::new(0.3, 0.3, 1e-14);
    b.bench("orient3d_f64_filtered", || float::orient3d(pa, pb, pc, pd));

    // The staged-vs-naive visibility comparison across dimensions.
    for dim in [2usize, 3, 5, 7] {
        bench_staged_vs_naive(&mut b, dim);
    }

    // The SoA block filter vs the per-facet staged scan at snapshot scale.
    for (dim, n) in [(2usize, 1024usize), (3, 1024), (5, 4096)] {
        bench_block_vs_perfacet(&mut b, dim, n);
    }

    b.report();
    // Snapshot lands at the workspace root regardless of cargo's bench cwd.
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_predicates.json");
    if let Err(e) = b.write_json(out) {
        eprintln!("could not write {out}: {e}");
    }
}
