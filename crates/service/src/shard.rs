//! The shard manager: epoch-versioned online hulls behind a batched,
//! backpressured, **supervised** ingest pipeline — now windowed and
//! deletable.
//!
//! Each shard is an **independent** hull (a namespace — clients route
//! requests by shard id, spreading unrelated workloads across workers).
//! Per shard:
//!
//! * one [`BoundedQueue`] of ingest items — producers are connection
//!   threads calling [`HullService::try_mutate`], which never blocks: a
//!   full queue is reported per point so the wire layer replies with
//!   explicit backpressure instead of buffering;
//! * one **supervised worker thread** that drains the queue in coalesced
//!   batches (`pop_batch`, continuing non-blockingly through a deep
//!   backlog up to a fairness bound), resolves the batch's mutations
//!   against the shard's live multiset, journals the unit **and marks it
//!   as one atomic unit**, applies its inserts to the private hull as a
//!   single parallel batch insert (Algorithm 3's `ProcessRidge`
//!   recursion via [`HullBuilder::push_batch`]), and republishes an
//!   `Arc<HullSnapshot>` under a short write-lock;
//! * a [`LiveSet`] tracking which inserted rows are still live (deletes
//!   and window expiry tombstone rows instead of mutating the hull);
//! * a [`ShardStats`] block of lock-free counters.
//!
//! ## Deletion, windows, and rebuilds
//!
//! The online hull is insert-only, so departure is served by
//! **tombstone-then-rebuild**: a `Delete` (or a window expiry) kills the
//! row in the live set and journals a tombstone record in the same batch
//! unit. The hull itself is rebuilt from [`LiveSet::survivors`] through
//! the parallel bulk constructor ([`HullBuilder::seed_from_bulk`]) only
//! when it has to be:
//!
//! * immediately, when a tombstoned row's last live copy does not
//!   classify strictly [`PointLocation::Inside`] the current hull (an
//!   interior delete can never change the hull — Theorem 4.2's
//!   order-independence makes the survivor rebuild canonically
//!   equivalent to any insertion order of the survivors);
//! * lazily, when dead live-set entries exceed `rebuild_ratio` × live
//!   rows (reclaiming memory), or when the journal exceeds
//!   `journal_ratio` × live rows (**auto-compaction**, retiring the
//!   manual-only `hull compact` flow).
//!
//! A primary-side rebuild is journaled as **one checkpoint unit**: the
//! WAL is atomically rewritten to a checkpoint header (preserving the
//! cumulative unit index) plus the survivors, so WAL replay, supervised
//! recovery, and follower replication all stay crash-safe for free.
//! The trigger ratios deliberately compare against **live rows**, not
//! hull vertices: a rebuild cannot shrink the journal below the live
//! count (survivors must be retained for delete correctness), so a
//! hull-vertex denominator would re-trigger immediately forever.
//!
//! ## Failure model
//!
//! The drain loop runs under `catch_unwind`. If it panics (a bug, or an
//! armed [`failpoint`](chull_concurrent::failpoint) schedule), the
//! supervisor — the same OS thread, one frame up — takes over:
//!
//! 1. marks the shard **degraded** and bumps its recovery *generation*;
//!    queries keep flowing from the last published snapshot, wrapped in
//!    the wire `Degraded` status so callers can see the staleness;
//! 2. rebuilds hull **and live set** by replaying the shard's typed
//!    [`Journal`] in its journaled batch units (tombstones journaled
//!    *before* the hull is touched, so a crash mid-rebuild loses
//!    nothing: replay reconstructs the live set and re-runs the rebuild
//!    decision);
//! 3. republishes a fresh snapshot and clears the degraded flag.
//!
//! **Exactly-once for acked mutations**: a mutation is acked when it
//! enters the queue. The queue lives outside `catch_unwind`, so
//! un-popped items survive a worker death; popped items are journaled
//! (journal-before-apply) *before* any of them touches the hull, so a
//! panic during apply loses nothing — the journal prefix plus the
//! remaining queue is the complete shard state. A `Flush` barrier whose
//! ack channel dies with the worker is transparently re-armed by
//! [`HullService::flush`].
//!
//! With `wal_dir` set, the journal is additionally a crc32-checked
//! on-disk WAL, so the same replay survives a full process restart
//! (torn tails from a mid-write crash are detected and dropped).

use crate::journal::{Journal, JournalOp};
use crate::metrics::{service_metrics, shard_gauges, ShardGauges};
use crate::replica::ReplLog;
use crate::snapshot::{HullSnapshot, SnapState};
use crate::stats::ShardStats;
use crate::wire::{Mutation, ReplUnit};
use chull_concurrent::failpoint::{self, sites};
use chull_concurrent::{BoundedQueue, PushError};
use chull_core::online::{HullBuilder, PointLocation};
use chull_core::{LiveSet, RemoveOutcome, WindowPolicy};
use chull_geometry::{KernelCounts, MAX_COORD};
use std::collections::HashSet;
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{mpsc, Arc, Mutex, OnceLock, RwLock};
use std::thread::JoinHandle;
use std::time::Instant;

/// Sizing and placement knobs for one [`HullService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Dimension of every hull (2..=8).
    pub dim: usize,
    /// Number of independent shards.
    pub shards: usize,
    /// Ingest queue capacity per shard (backpressure threshold).
    pub queue_capacity: usize,
    /// Largest batch one publication coalesces.
    pub max_batch: usize,
    /// Pool worker threads each shard applies batches with (`0` = auto,
    /// one per available core). `1` pins batch apply to the shard thread
    /// — the A/B baseline for measuring parallel batch speedup. Any
    /// value yields bit-identical hulls.
    pub workers: usize,
    /// Directory for per-shard write-ahead logs. `None` keeps the
    /// journal purely in memory: worker crashes are still recovered, but
    /// a process restart starts empty.
    pub wal_dir: Option<PathBuf>,
    /// Journals holding at least this many inserts rebuild through the
    /// **bulk** divide-and-conquer constructor
    /// ([`HullBuilder::seed_from_bulk`], DESIGN §S21) instead of
    /// incremental batch replay — at WAL cold start, at supervised
    /// crash recovery, and at follower bootstrap. `0` (the default)
    /// disables the bulk path entirely: replay stays bit-identical to
    /// the lost hull, the A/B baseline. With bulk, the rebuilt hull is
    /// canonically identical (same facets, possibly different internal
    /// ids), which every query surface is insensitive to.
    pub bulk_threshold: usize,
    /// Per-shard retention window, applied after every publication:
    /// rows falling out of the window are tombstoned exactly as if a
    /// `Delete` had arrived for them. [`WindowPolicy::None`] (the
    /// default) keeps everything; only explicit deletes remove rows.
    pub window: WindowPolicy,
    /// Tombstone-ratio rebuild trigger: when dead (tombstoned but not
    /// yet compacted) live-set entries exceed this fraction of the live
    /// rows, the shard rebuilds its hull from the survivors and
    /// checkpoints the journal. Default `0.5`.
    pub rebuild_ratio: f64,
    /// Auto-compaction trigger: when the journal holds more than this
    /// many ops per live row, the shard rebuilds and checkpoints even
    /// if no tombstone demanded it — the successor to the manual-only
    /// `hull compact` flow. Compared against **live rows** (see module
    /// docs for why not hull vertices). `0.0` disables the trigger;
    /// default `4.0`. Insert-only shards never reach it (one op per
    /// live row).
    pub journal_ratio: f64,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            dim: 2,
            shards: 4,
            queue_capacity: 1024,
            max_batch: 256,
            workers: 0,
            wal_dir: None,
            bulk_threshold: 0,
            window: WindowPolicy::None,
            rebuild_ratio: 0.5,
            journal_ratio: 4.0,
        }
    }
}

/// Outcome of a non-blocking insert attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertOutcome {
    /// Queued for the shard's next batch.
    Queued,
    /// Queue at capacity — the caller should retry after a pause.
    Overloaded,
}

/// Request-level failures (distinct from backpressure).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// Shard id out of range.
    BadShard(u16),
    /// Point rejected (wrong dimension or coordinate out of range).
    BadPoint(String),
    /// The service is shutting down.
    Closed,
    /// Write rejected: this node is a read-only follower replica; only
    /// its replication puller may mutate shard state.
    ReadOnly,
    /// The requested operation cannot be served at the negotiated
    /// protocol version (e.g. a v5 flat replication fetch against a
    /// journal holding tombstone or checkpoint units).
    Unsupported(String),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::BadShard(s) => write!(f, "shard {s} out of range"),
            ServiceError::BadPoint(msg) => write!(f, "bad point: {msg}"),
            ServiceError::Closed => write!(f, "service shutting down"),
            ServiceError::ReadOnly => write!(f, "read-only follower replica"),
            ServiceError::Unsupported(msg) => write!(f, "unsupported: {msg}"),
        }
    }
}

/// A follower-bootstrap payload drained from the queue: the whole
/// journaled prefix as pure-insert batch units, plus the puller's ack
/// channel.
type BulkIngest = (Vec<Vec<Vec<i64>>>, mpsc::Sender<u64>);

enum Ingest {
    /// One local mutation (insert, delete, or expire) — the unified
    /// ingest item behind [`HullService::try_mutate`].
    Mutate(Mutation),
    /// Barrier: acknowledged (with the publication epoch) only after every
    /// item queued before it has been applied and republished.
    Flush(mpsc::Sender<u64>),
    /// One replicated journal batch unit (follower apply path): applied
    /// as exactly one journal unit — its own marker, its own epoch — so
    /// the follower's batch indices mirror the primary's 1:1. The ack
    /// carries the publication epoch after the unit landed.
    Replica {
        inserts: Vec<Vec<i64>>,
        tombstones: Vec<Vec<i64>>,
        done: mpsc::Sender<u64>,
    },
    /// A primary's checkpoint unit (follower apply path): replace the
    /// shard's journal with the shipped survivors at the shipped
    /// cumulative unit index, rebuilding hull and live set from them.
    ReplicaCheckpoint {
        units_after: u64,
        survivors: Vec<Vec<i64>>,
        done: mpsc::Sender<u64>,
    },
    /// Follower **bootstrap** (initial catch-up): the entire journaled
    /// prefix as its original pure-insert batch units. Every unit is
    /// journaled and marked individually — the 1:1 index mirror
    /// survives — but the hull is built **once**, through the bulk
    /// constructor when the prefix clears the threshold, instead of
    /// unit by unit. The ack carries the publication epoch after the
    /// whole prefix landed.
    ReplicaBulk {
        units: Vec<Vec<Vec<i64>>>,
        done: mpsc::Sender<u64>,
    },
}

/// Clone the published snapshot `Arc`, tolerating a poisoned lock (the
/// lock only ever guards an `Arc` swap, so the value is always intact).
fn load_snap(lock: &RwLock<Arc<HullSnapshot>>) -> Arc<HullSnapshot> {
    match lock.read() {
        Ok(g) => Arc::clone(&g),
        Err(poisoned) => Arc::clone(&poisoned.into_inner()),
    }
}

/// Swap in a new published snapshot, tolerating a poisoned lock.
fn store_snap(lock: &RwLock<Arc<HullSnapshot>>, snap: HullSnapshot) {
    let mut g = match lock.write() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    *g = Arc::new(snap);
}

/// Freeze the builder's current state into an epoch-stamped snapshot.
/// For a live hull this also builds the snapshot's query accelerators
/// (packed-plane filter block + cached hull vertex list) exactly once,
/// here — every publish site (initial spawn, recovery republish, post-
/// batch publish, post-rebuild publish) funnels through this function.
fn snapshot_of(core: &HullBuilder, epoch: u64) -> HullSnapshot {
    match core.hull() {
        Some(h) => HullSnapshot::freeze_live(epoch, core.applied(), h.clone()),
        None => HullSnapshot {
            epoch,
            applied: core.applied(),
            dim: core.dim(),
            state: SnapState::Boot(core.buffered().unwrap_or(&[]).to_vec()),
            accel: None,
        },
    }
}

/// Count a WAL write failure (tolerated: the in-memory journal stays
/// authoritative for in-process recovery).
fn wal_err(stats: &ShardStats) {
    stats.wal_errors.fetch_add(1, Ordering::Relaxed);
    service_metrics().wal_errors.incr();
}

/// Build a hull from the journal's **insert** rows in their batch units
/// (tombstones contribute nothing to the build — see [`replay_shard`]
/// for where they are honored). Below `bulk_threshold` inserts (or with
/// the threshold at 0), incremental batch replay reproduces the lost
/// hull bit-identically for insert-only journals. At or above it, the
/// bulk divide-and-conquer constructor builds a canonically identical
/// hull in one pass. A degenerate journal (no full-rank prefix) falls
/// back to incremental replay inside `seed_from_bulk`; that is not
/// counted as a bulk build.
fn replay_core(
    dim: usize,
    journal: &Journal,
    workers: usize,
    bulk_threshold: usize,
    stats: &ShardStats,
) -> HullBuilder {
    if bulk_threshold > 0 && journal.len() >= bulk_threshold {
        let rows = journal.insert_rows();
        if rows.len() >= bulk_threshold {
            let t0 = Instant::now();
            let (core, report) = HullBuilder::seed_from_bulk(dim, &rows, workers);
            if !report.fallback {
                stats.bulk_builds.fetch_add(1, Ordering::Relaxed);
                stats
                    .bulk_pruned
                    .fetch_add((report.input - report.candidates) as u64, Ordering::Relaxed);
                if chull_obs::armed() {
                    let m = service_metrics();
                    m.bulk_builds.incr();
                    m.bulk_build_us.record(t0.elapsed().as_micros() as u64);
                }
            }
            return core;
        }
    }
    // Tombstone-only units applied no batch originally, so dropping
    // their (empty) insert unit keeps replay bit-identical.
    let units: Vec<Vec<Vec<i64>>> = journal
        .batches()
        .map(|u| {
            u.iter()
                .filter_map(|op| match op {
                    JournalOp::Insert(r) => Some(r.clone()),
                    JournalOp::Tombstone(_) => None,
                })
                .collect::<Vec<_>>()
        })
        .filter(|u| !u.is_empty())
        .collect();
    HullBuilder::replay_batches(dim, units.iter().map(|u| u.as_slice()), workers)
}

/// Rebuild a shard's hull **and live set** from its journal — the one
/// decision point for every restart surface (WAL cold start, supervised
/// crash recovery). The hull is built from all journaled insert rows;
/// the live set is reconstructed by walking the typed ops in unit order
/// (every journaled tombstone finds a live copy on replay, because
/// tombstones are journaled only when they killed one originally and
/// replay sees at least as many arrivals). If any fully-dead row is not
/// strictly inside the built hull, one in-memory rebuild from the
/// survivors restores the windowed-serving invariant — no WAL rewrite,
/// no unit-count change, so replay stays idempotent.
fn replay_shard(
    dim: usize,
    journal: &Journal,
    workers: usize,
    bulk_threshold: usize,
    stats: &ShardStats,
) -> (HullBuilder, LiveSet) {
    let mut core = replay_core(dim, journal, workers, bulk_threshold, stats);
    let mut live = LiveSet::new();
    let base = journal.unit_base();
    let mut tombstoned: HashSet<Vec<i64>> = HashSet::new();
    for (idx, unit) in journal.batches().enumerate() {
        let at = base + idx as u64 + 1;
        for op in unit {
            match op {
                JournalOp::Insert(row) => live.insert(row.clone(), at),
                JournalOp::Tombstone(row) => {
                    let _ = live.remove(row);
                    tombstoned.insert(row.clone());
                }
            }
        }
    }
    if tombstoned.is_empty() {
        // Insert-only journal: replay is bit-identical, nothing to
        // classify.
        return (core, live);
    }
    let needs_rebuild = match core.hull() {
        Some(h) => {
            let mut scratch = KernelCounts::default();
            tombstoned
                .iter()
                .any(|t| live.count(t) == 0 && h.classify(t, &mut scratch) != PointLocation::Inside)
        }
        // Still bootstrapping: the buffer may hold dead rows; rebuild
        // conservatively whenever any row is fully dead.
        None => tombstoned.iter().any(|t| live.count(t) == 0),
    };
    if needs_rebuild {
        let survivors = live.survivors();
        core = HullBuilder::seed_from_bulk(dim, &survivors, workers).0;
        stats.rebuilds.fetch_add(1, Ordering::Relaxed);
    }
    (core, live)
}

/// Seal the journal's open tail for replay, surfacing a torn tail (a
/// journal that lost already-published units — `JournalError::TornTail`)
/// in release builds too, where it used to be a debug-only assert. The
/// shard keeps serving from what the journal does hold (availability
/// over self-destruction), but the event is counted and logged so it is
/// never silent.
fn seal_for_replay(journal: &mut Journal, published_epoch: u64, shard_stats: &ShardStats) {
    match journal.seal_tail(published_epoch) {
        Ok(_) => {}
        Err(e @ crate::journal::JournalError::TornTail { .. }) => {
            shard_stats.torn_tails.fetch_add(1, Ordering::Relaxed);
            service_metrics().torn_tails.incr();
            eprintln!("journal: {e}");
        }
        Err(crate::journal::JournalError::Wal(_)) => {
            shard_stats.wal_errors.fetch_add(1, Ordering::Relaxed);
            service_metrics().wal_errors.incr();
        }
    }
}

struct Shard {
    queue: Arc<BoundedQueue<Ingest>>,
    snap: Arc<RwLock<Arc<HullSnapshot>>>,
    stats: Arc<ShardStats>,
    gauges: ShardGauges,
    /// Recovery generation: how many workers this shard has lost.
    generation: Arc<AtomicU32>,
    /// True only while the supervisor is replaying the journal.
    degraded: Arc<AtomicBool>,
    /// In-memory mirror of the journal's batch units, shared with the
    /// wire layer so replication can ship any unit without touching
    /// the worker-owned journal. Always `repl.total() == batch_count`.
    repl: Arc<ReplLog>,
    worker: Mutex<Option<JoinHandle<()>>>,
}

/// Everything the shard worker owns and mutates: the hull under
/// construction, the typed journal, the live multiset, and the epoch
/// bookkeeping that ties them together (`epoch` always equals the
/// journal's cumulative batch-unit count).
struct ShardState {
    core: HullBuilder,
    journal: Journal,
    /// Published epoch == journaled batch units (checkpoint-inclusive).
    epoch: u64,
    /// Inserts already counted into `batched_inserts` (so recovery can
    /// account for a crashed batch exactly once).
    recorded: u64,
    /// Which inserted rows are still live — deletes and window expiry
    /// resolve against this, never against the hull directly.
    live: LiveSet,
}

/// The shard manager; see module docs. Shared (`&self`) by every
/// connection thread; [`HullService::shutdown`] drains and joins.
pub struct HullService {
    config: ServiceConfig,
    /// Resolved batch-apply worker count (`config.workers`, 0 → auto).
    workers: usize,
    /// Follower mode: wire writes are rejected with
    /// [`ServiceError::ReadOnly`]; only the replica apply surface
    /// mutates shard state. Cleared on promotion.
    read_only: AtomicBool,
    /// Set once by [`crate::replica::follow`]: the puller's shared view
    /// of the primary, read by the dispatch layer to bound staleness.
    replica: OnceLock<Arc<crate::replica::ReplicaState>>,
    shards: Vec<Shard>,
}

impl HullService {
    /// Start `config.shards` supervised shard workers, recovering each
    /// shard's WAL first when `config.wal_dir` is set. Fails only on
    /// invalid sizing or a WAL directory that cannot be opened.
    pub fn new(config: ServiceConfig) -> io::Result<HullService> {
        if !(2..=chull_core::facet::MAX_DIM).contains(&config.dim) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("dimension {} out of range", config.dim),
            ));
        }
        if config.shards < 1 || config.shards >= u16::MAX as usize {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("shard count {} out of range", config.shards),
            ));
        }
        let workers = if config.workers == 0 {
            chull_concurrent::pool::default_threads()
        } else {
            config.workers
        };
        let mut shards = Vec::with_capacity(config.shards);
        for id in 0..config.shards {
            let mut journal = match &config.wal_dir {
                Some(dir) => Journal::with_wal(config.dim, dir, id as u16)?,
                None => Journal::in_memory(config.dim),
            };
            // Cold-start recovery happens *here*, synchronously: when
            // `new` returns, a WAL-backed shard already serves its
            // previous run's surviving points.
            let stats = Arc::new(ShardStats::default());
            let (core, live) =
                replay_shard(config.dim, &journal, workers, config.bulk_threshold, &stats);
            // Seal any open tail (ops whose batch marker was lost to
            // the crash): it just replayed as one unit and must stay one
            // unit in every future replay. Cold start has no published
            // epoch to validate against — 0 can never tear.
            seal_for_replay(&mut journal, 0, &stats);
            let epoch = journal.batch_count();
            for b in journal.batches() {
                let inserts = b
                    .iter()
                    .filter(|op| matches!(op, JournalOp::Insert(_)))
                    .count();
                stats.record_batch(inserts as u64);
            }
            stats
                .journal_len
                .store(journal.len() as u64, Ordering::Relaxed);
            stats
                .live_points
                .store(live.live() as u64, Ordering::Relaxed);
            stats
                .lazy_tombstones
                .store(live.dead_entries() as u64, Ordering::Relaxed);
            let queue = Arc::new(BoundedQueue::new(config.queue_capacity));
            let snap = Arc::new(RwLock::new(Arc::new(snapshot_of(&core, epoch))));
            let generation = Arc::new(AtomicU32::new(0));
            let degraded = Arc::new(AtomicBool::new(false));
            let gauges = shard_gauges(id);
            // The replication log mirrors the journal's batch units so
            // subscribers can fetch any unit, including everything
            // recovered from the WAL before this process started.
            let repl = Arc::new(ReplLog::new());
            repl.reset_from(&journal);
            let ctx = ShardCtx {
                dim: config.dim,
                max_batch: config.max_batch,
                workers,
                bulk_threshold: config.bulk_threshold,
                window: config.window,
                rebuild_ratio: config.rebuild_ratio,
                journal_ratio: config.journal_ratio,
                queue: Arc::clone(&queue),
                snap: Arc::clone(&snap),
                stats: Arc::clone(&stats),
                gauges: gauges.clone(),
                generation: Arc::clone(&generation),
                degraded: Arc::clone(&degraded),
                repl: Arc::clone(&repl),
            };
            let recorded = core.applied();
            let state = ShardState {
                core,
                journal,
                epoch,
                recorded,
                live,
            };
            let worker = std::thread::spawn(move || shard_supervisor(&ctx, state));
            shards.push(Shard {
                queue,
                snap,
                stats,
                gauges,
                generation,
                degraded,
                repl,
                worker: Mutex::new(Some(worker)),
            });
        }
        Ok(HullService {
            config,
            workers,
            read_only: AtomicBool::new(false),
            replica: OnceLock::new(),
            shards,
        })
    }

    /// Resolved pool worker threads per shard (`config.workers`, with
    /// `0` replaced by the machine's core count).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The configuration this service was started with.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    fn shard(&self, id: u16) -> Result<&Shard, ServiceError> {
        self.shards
            .get(id as usize)
            .ok_or(ServiceError::BadShard(id))
    }

    fn validate(&self, point: &[i64]) -> Result<(), ServiceError> {
        if point.len() != self.config.dim {
            return Err(ServiceError::BadPoint(format!(
                "expected {} coordinates, got {}",
                self.config.dim,
                point.len()
            )));
        }
        if let Some(c) = point.iter().find(|c| c.abs() > MAX_COORD) {
            return Err(ServiceError::BadPoint(format!(
                "coordinate {c} exceeds MAX_COORD"
            )));
        }
        Ok(())
    }

    /// The unified ingest surface: enqueue a sequence of mutations
    /// (inserts, deletes, expires) for one shard. Every point is
    /// validated **before** any is enqueued, so a malformed batch fails
    /// whole with nothing queued. Enqueueing is then per-item
    /// best-effort: `accepted[i]` is `false` when item `i` hit a full
    /// queue (the caller retries just those). The returned epoch is the
    /// published snapshot epoch observed at enqueue time. Items that
    /// land in one `pop_batch` drain resolve and apply as a single
    /// journal unit. A `Queued` item is the service's **ack**: it now
    /// either reaches the hull/live set or survives a worker death in
    /// the queue/journal.
    pub fn try_mutate(
        &self,
        shard: u16,
        muts: Vec<Mutation>,
    ) -> Result<(Vec<bool>, u64), ServiceError> {
        if self.read_only.load(Ordering::SeqCst) {
            return Err(ServiceError::ReadOnly);
        }
        for m in &muts {
            match m {
                Mutation::Insert(p) | Mutation::Delete(p) => self.validate(p)?,
                Mutation::Expire(_) => {}
            }
        }
        let sh = self.shard(shard)?;
        let mut accepted = Vec::with_capacity(muts.len());
        for m in muts {
            let is_insert = matches!(m, Mutation::Insert(_));
            match sh.queue.try_push(Ingest::Mutate(m)) {
                Ok(()) => {
                    if is_insert {
                        sh.stats.inserts_enqueued.fetch_add(1, Ordering::Relaxed);
                        service_metrics().inserts_enqueued.incr();
                    } else {
                        sh.stats.deletes_enqueued.fetch_add(1, Ordering::Relaxed);
                    }
                    accepted.push(true);
                }
                Err(PushError::Full(_)) => {
                    sh.stats.overloaded.fetch_add(1, Ordering::Relaxed);
                    service_metrics().overloaded.incr();
                    accepted.push(false);
                }
                Err(PushError::Closed(_)) => return Err(ServiceError::Closed),
            }
        }
        Ok((accepted, load_snap(&sh.snap).epoch))
    }

    /// Non-blocking insert; `Overloaded` is the backpressure signal.
    /// Thin shim over [`HullService::try_mutate`].
    pub fn try_insert(&self, shard: u16, point: Vec<i64>) -> Result<InsertOutcome, ServiceError> {
        let (accepted, _) = self.try_mutate(shard, vec![Mutation::Insert(point)])?;
        Ok(if accepted[0] {
            InsertOutcome::Queued
        } else {
            InsertOutcome::Overloaded
        })
    }

    /// Non-blocking batch insert (wire `InsertBatch`, protocol v2).
    /// Thin shim over [`HullService::try_mutate`].
    pub fn try_insert_batch(
        &self,
        shard: u16,
        points: Vec<Vec<i64>>,
    ) -> Result<(Vec<bool>, u64), ServiceError> {
        self.try_mutate(shard, points.into_iter().map(Mutation::Insert).collect())
    }

    /// Barrier: blocks until every mutation enqueued before this call
    /// has been applied and republished; returns the publication epoch.
    ///
    /// If the worker dies while holding the barrier, its ack channel dies
    /// with it — the barrier is re-armed on the recovered worker, so a
    /// flush straddling a crash still fences everything queued before it
    /// (the journal replay reapplies the popped prefix first).
    pub fn flush(&self, shard: u16) -> Result<u64, ServiceError> {
        let sh = self.shard(shard)?;
        sh.stats.flushes.fetch_add(1, Ordering::Relaxed);
        service_metrics().flushes.incr();
        loop {
            let (tx, rx) = mpsc::channel();
            // Blocking push: a flush may wait for queue space, but never
            // spins — it rides the same FIFO as the items it fences.
            match sh.queue.push(Ingest::Flush(tx)) {
                Ok(()) => match rx.recv() {
                    Ok(epoch) => return Ok(epoch),
                    // Worker died mid-batch and dropped the sender;
                    // the supervisor is rebuilding. Re-arm the barrier.
                    Err(_) => continue,
                },
                Err(_) => return Err(ServiceError::Closed),
            }
        }
    }

    /// Put the service in (or take it out of) read-only follower mode:
    /// wire writes are rejected with [`ServiceError::ReadOnly`] so a
    /// follower's journal stays a 1:1 mirror of its primary's batch
    /// units. Promotion is `set_read_only(false)` — the shards keep
    /// their epochs, so the promoted history stays monotone.
    pub fn set_read_only(&self, read_only: bool) {
        self.read_only.store(read_only, Ordering::SeqCst);
    }

    /// Whether this service is a read-only follower replica.
    pub fn is_read_only(&self) -> bool {
        self.read_only.load(Ordering::SeqCst)
    }

    /// Attach the follower puller's shared state (first call wins);
    /// done by [`crate::replica::follow`] before its thread starts.
    pub fn attach_replica_state(&self, state: Arc<crate::replica::ReplicaState>) {
        let _ = self.replica.set(state);
    }

    /// The epoch-staleness bound for a follower read: how many primary
    /// batch units this shard has not applied yet. `None` when this
    /// node never followed a primary, or once it promoted itself (a
    /// promoted follower *is* the primary; its reads are not stale).
    pub fn replica_lag(&self, shard: u16) -> Option<u64> {
        let state = self.replica.get()?;
        if state.promoted() {
            return None;
        }
        let have = self.shard(shard).ok()?.repl.total();
        Some(state.primary_total(shard).saturating_sub(have))
    }

    /// Journal batch units this shard holds — a follower's resume
    /// cursor: its next replication fetch asks for exactly this index.
    pub fn batch_units(&self, shard: u16) -> Result<u64, ServiceError> {
        Ok(self.shard(shard)?.repl.total())
    }

    /// Ship one **typed** journal batch unit to a v6 replication
    /// subscriber: returns `(index, total, unit)` — the unit at
    /// `from_index`, or the pending checkpoint unit (whose `index` may
    /// be **ahead** of `from_index`: units the checkpoint collapsed are
    /// no longer individually available and the follower must apply the
    /// checkpoint instead), or an empty `Ops` unit with `index == total`
    /// when the subscriber is caught up.
    pub fn repl_unit_fetch(
        &self,
        shard: u16,
        from_index: u64,
    ) -> Result<(u64, u64, ReplUnit), ServiceError> {
        let sh = self.shard(shard)?;
        let total = sh.repl.total();
        match sh.repl.get_abs(from_index) {
            Some((index, unit)) => {
                service_metrics().repl_units_shipped.incr();
                Ok((index, total, (*unit).clone()))
            }
            None => Ok((
                total,
                total,
                ReplUnit::Ops {
                    inserts: Vec::new(),
                    tombstones: Vec::new(),
                },
            )),
        }
    }

    /// Ship one journal batch unit as a **flat point list** (protocol
    /// v5 `ReplSubscribe` compatibility): returns `(index, total, flat
    /// points)`. Only pure-insert units can be flattened — a fetch that
    /// lands on a tombstone-bearing or checkpoint unit fails with
    /// [`ServiceError::Unsupported`]; such followers must speak v6.
    /// Insert-only shards behave byte-for-byte as before.
    pub fn repl_fetch(
        &self,
        shard: u16,
        from_index: u64,
    ) -> Result<(u64, u64, Vec<i64>), ServiceError> {
        let sh = self.shard(shard)?;
        let total = sh.repl.total();
        match sh.repl.get_abs(from_index) {
            Some((index, unit)) => {
                if index != from_index {
                    return Err(ServiceError::Unsupported(
                        "journal checkpointed past the requested unit; \
                         v5 flat replication cannot resume — use v6"
                            .into(),
                    ));
                }
                match &*unit {
                    ReplUnit::Ops {
                        inserts,
                        tombstones,
                    } if tombstones.is_empty() => {
                        let mut flat = Vec::with_capacity(inserts.len() * self.config.dim);
                        for p in inserts {
                            flat.extend_from_slice(p);
                        }
                        service_metrics().repl_units_shipped.incr();
                        Ok((from_index, total, flat))
                    }
                    _ => Err(ServiceError::Unsupported(
                        "unit holds tombstone or checkpoint ops; \
                         v5 flat replication cannot ship it — use v6"
                            .into(),
                    )),
                }
            }
            None => Ok((total, total, Vec::new())),
        }
    }

    /// Record a subscriber's durable-apply ack (`ReplAck` dispatch):
    /// every unit below `index` is applied on the subscriber. Returns
    /// the subscriber's lag in batch units and refreshes the
    /// `chull_replica_*` gauges.
    pub fn repl_ack(&self, shard: u16, index: u64) -> Result<u64, ServiceError> {
        let sh = self.shard(shard)?;
        let (acked, total) = sh.repl.record_ack(index);
        if chull_obs::armed() {
            sh.gauges
                .replica_last_acked
                .set(acked.min(i64::MAX as u64) as i64);
            sh.gauges
                .replica_lag_batches
                .set(total.saturating_sub(acked).min(i64::MAX as u64) as i64);
        }
        Ok(total.saturating_sub(acked))
    }

    /// Apply one replicated ops unit (follower puller path, allowed
    /// even in read-only mode): inserts plus tombstones, enqueued whole
    /// and applied as exactly one journal unit — one marker, one epoch
    /// — keeping the follower's batch indices aligned with the
    /// primary's. Blocks until the unit is applied and published; if
    /// the shard worker dies mid-apply, returns the current published
    /// epoch and the caller re-derives its resume cursor from
    /// [`HullService::batch_units`] (the unit is journaled before it
    /// touches the hull, so it either survived whole or not at all).
    pub fn apply_replica_ops(
        &self,
        shard: u16,
        inserts: Vec<Vec<i64>>,
        tombstones: Vec<Vec<i64>>,
    ) -> Result<u64, ServiceError> {
        for p in inserts.iter().chain(tombstones.iter()) {
            self.validate(p)?;
        }
        let sh = self.shard(shard)?;
        if inserts.is_empty() && tombstones.is_empty() {
            return Ok(load_snap(&sh.snap).epoch);
        }
        let (done, rx) = mpsc::channel();
        match sh.queue.push(Ingest::Replica {
            inserts,
            tombstones,
            done,
        }) {
            Ok(()) => {}
            Err(_) => return Err(ServiceError::Closed),
        }
        match rx.recv() {
            Ok(epoch) => Ok(epoch),
            // Worker died mid-apply; the supervisor replays the journal.
            // Never re-enqueue — a duplicate unit would skew the 1:1
            // index mirror. The caller reconciles via `batch_units`.
            Err(_) => Ok(load_snap(&sh.snap).epoch),
        }
    }

    /// Apply one replicated pure-insert batch unit (protocol v5
    /// follower path). Thin shim over
    /// [`HullService::apply_replica_ops`].
    pub fn apply_replica_unit(&self, shard: u16, unit: Vec<Vec<i64>>) -> Result<u64, ServiceError> {
        self.apply_replica_ops(shard, unit, Vec::new())
    }

    /// Apply a primary's **checkpoint unit** (follower puller path,
    /// allowed in read-only mode): replace the shard's journal with the
    /// shipped survivors at cumulative unit index `units_after`,
    /// rebuilding the hull and live set from them — the follower-side
    /// mirror of a primary rebuild, preserving the 1:1 unit index.
    /// A stale checkpoint (at or below the follower's current unit
    /// count) is ignored. Blocks until published; worker-death
    /// semantics match [`HullService::apply_replica_ops`].
    pub fn apply_replica_checkpoint(
        &self,
        shard: u16,
        units_after: u64,
        survivors: Vec<Vec<i64>>,
    ) -> Result<u64, ServiceError> {
        if units_after == 0 {
            return Err(ServiceError::BadPoint("checkpoint at unit 0".into()));
        }
        for p in &survivors {
            self.validate(p)?;
        }
        let sh = self.shard(shard)?;
        let (done, rx) = mpsc::channel();
        match sh.queue.push(Ingest::ReplicaCheckpoint {
            units_after,
            survivors,
            done,
        }) {
            Ok(()) => {}
            Err(_) => return Err(ServiceError::Closed),
        }
        match rx.recv() {
            Ok(epoch) => Ok(epoch),
            Err(_) => Ok(load_snap(&sh.snap).epoch),
        }
    }

    /// Apply a follower's **bootstrap prefix** — every replicated
    /// pure-insert batch unit from index 0 — as one build (follower
    /// puller path, allowed in read-only mode). Each unit is still
    /// journaled and marked individually, keeping the 1:1 batch-index
    /// mirror with the primary, but the hull is constructed once over
    /// the whole prefix (through [`HullBuilder::seed_from_bulk`] when
    /// it clears `bulk_threshold`) and published at the final epoch,
    /// instead of replaying thousands of units one publication at a
    /// time. Blocks until published; worker-death semantics match
    /// [`HullService::apply_replica_ops`].
    pub fn apply_replica_bulk(
        &self,
        shard: u16,
        units: Vec<Vec<Vec<i64>>>,
    ) -> Result<u64, ServiceError> {
        for unit in &units {
            for p in unit {
                self.validate(p)?;
            }
        }
        let sh = self.shard(shard)?;
        if units.is_empty() {
            return Ok(load_snap(&sh.snap).epoch);
        }
        let (done, rx) = mpsc::channel();
        match sh.queue.push(Ingest::ReplicaBulk { units, done }) {
            Ok(()) => {}
            Err(_) => return Err(ServiceError::Closed),
        }
        match rx.recv() {
            Ok(epoch) => Ok(epoch),
            Err(_) => Ok(load_snap(&sh.snap).epoch),
        }
    }

    /// The shard's current published snapshot (wait-free for ingest: the
    /// write side holds the lock only to swap an `Arc`). During recovery
    /// this is the last snapshot the dead worker published.
    pub fn snapshot(&self, shard: u16) -> Result<Arc<HullSnapshot>, ServiceError> {
        Ok(load_snap(&self.shard(shard)?.snap))
    }

    /// `Some(generation)` while the shard's supervisor is replaying its
    /// journal after a worker death — reads meanwhile come from the last
    /// good snapshot. `None` when the shard is healthy.
    pub fn degraded(&self, shard: u16) -> Result<Option<u32>, ServiceError> {
        let sh = self.shard(shard)?;
        if sh.degraded.load(Ordering::SeqCst) {
            Ok(Some(sh.generation.load(Ordering::SeqCst)))
        } else {
            Ok(None)
        }
    }

    /// The shard's recovery generation: how many workers it has lost
    /// (0 = the original worker is still alive).
    pub fn generation(&self, shard: u16) -> Result<u32, ServiceError> {
        Ok(self.shard(shard)?.generation.load(Ordering::SeqCst))
    }

    /// Per-shard stats block (for folding query-path kernel counters).
    pub fn stats_for(&self, shard: u16) -> Result<&ShardStats, ServiceError> {
        Ok(&self.shard(shard)?.stats)
    }

    /// Queue depth gauge for one shard.
    pub fn queue_depth(&self, shard: u16) -> Result<usize, ServiceError> {
        Ok(self.shard(shard)?.queue.len())
    }

    /// One JSON line: a single shard's counters, or (for `None`) the
    /// service aggregate with a per-shard breakdown.
    pub fn stats_json(&self, shard: Option<u16>) -> Result<String, ServiceError> {
        match shard {
            Some(id) => {
                let sh = self.shard(id)?;
                let snap = load_snap(&sh.snap);
                Ok(sh.stats.json(id as usize, &snap, sh.queue.len()))
            }
            None => {
                let mut total_applied = 0u64;
                let mut total_facets = 0usize;
                let mut total_recoveries = 0u64;
                let mut parts = Vec::with_capacity(self.shards.len());
                for (i, sh) in self.shards.iter().enumerate() {
                    let snap = load_snap(&sh.snap);
                    total_applied += snap.applied;
                    total_facets += snap.num_facets();
                    total_recoveries += sh.stats.recoveries.load(Ordering::Relaxed);
                    parts.push(sh.stats.json(i, &snap, sh.queue.len()));
                }
                Ok(format!(
                    "{{\"dim\":{},\"shards\":{},\"applied_total\":{total_applied},\
                     \"hull_facets_total\":{total_facets},\
                     \"recoveries_total\":{total_recoveries},\"per_shard\":[{}]}}",
                    self.config.dim,
                    self.shards.len(),
                    parts.join(",")
                ))
            }
        }
    }

    /// Refresh each shard's level gauges (queue depth, dependence depth,
    /// journal length, epoch, live/tombstoned rows) from live state.
    /// Called at scrape time — by the wire `Metrics` dispatch and the
    /// HTTP `/metrics` pre-render hook — so gauges are current even on
    /// an idle service. No-op while telemetry is disarmed.
    pub fn update_scrape_gauges(&self) {
        if !chull_obs::armed() {
            return;
        }
        for sh in &self.shards {
            let snap = load_snap(&sh.snap);
            sh.gauges.queue_depth.set(sh.queue.len() as i64);
            sh.gauges.dep_depth.set(snap.dep_depth() as i64);
            sh.gauges
                .journal_len
                .set(sh.stats.journal_len.load(Ordering::Relaxed) as i64);
            sh.gauges.epoch.set(snap.epoch as i64);
            sh.gauges.workers.set(self.workers as i64);
            sh.gauges.plane_block_len.set(snap.plane_block_len() as i64);
            sh.gauges.hull_vertices.set(snap.hull_vertex_count() as i64);
            sh.gauges
                .live_points
                .set(sh.stats.live_points.load(Ordering::Relaxed) as i64);
            sh.gauges
                .lazy_tombstones
                .set(sh.stats.lazy_tombstones.load(Ordering::Relaxed) as i64);
            let acked = sh.repl.acked();
            sh.gauges
                .replica_last_acked
                .set(acked.min(i64::MAX as u64) as i64);
            sh.gauges
                .replica_lag_batches
                .set(sh.repl.total().saturating_sub(acked).min(i64::MAX as u64) as i64);
        }
    }

    /// Graceful shutdown: close every ingest queue (pending batches still
    /// apply), then join the workers. Idempotent.
    pub fn shutdown(&self) {
        for sh in &self.shards {
            sh.queue.close();
        }
        for sh in &self.shards {
            let handle = match sh.worker.lock() {
                Ok(mut g) => g.take(),
                Err(poisoned) => poisoned.into_inner().take(),
            };
            if let Some(h) = handle {
                // The supervisor catches every worker panic, so an
                // unwinding join is a bug in the supervisor itself.
                h.join().expect("invariant: shard supervisor never unwinds");
            }
        }
    }
}

impl Drop for HullService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Everything a shard's supervisor thread shares with the service.
struct ShardCtx {
    dim: usize,
    max_batch: usize,
    /// Resolved pool threads for parallel batch apply (never 0).
    workers: usize,
    /// Bulk-recovery threshold (inserts; 0 = bulk path disabled).
    bulk_threshold: usize,
    /// Retention window applied after every local publication.
    window: WindowPolicy,
    /// Tombstone-ratio rebuild trigger (dead entries vs live rows).
    rebuild_ratio: f64,
    /// Auto-compaction trigger (journal ops vs live rows; 0 disables).
    journal_ratio: f64,
    queue: Arc<BoundedQueue<Ingest>>,
    snap: Arc<RwLock<Arc<HullSnapshot>>>,
    stats: Arc<ShardStats>,
    gauges: ShardGauges,
    generation: Arc<AtomicU32>,
    degraded: Arc<AtomicBool>,
    repl: Arc<ReplLog>,
}

/// The shard's OS thread: run the drain loop under `catch_unwind`; on a
/// worker panic, rebuild from the journal and re-enter the loop. Never
/// unwinds itself. (`state` arrives pre-built: WAL cold-start replay
/// runs synchronously in [`HullService::new`].)
fn shard_supervisor(ctx: &ShardCtx, mut st: ShardState) {
    loop {
        let run = catch_unwind(AssertUnwindSafe(|| drain_loop(ctx, &mut st)));
        match run {
            // Queue closed and drained: clean exit.
            Ok(()) => return,
            Err(_) => {
                // The worker died mid-batch. Every popped mutation is in
                // the journal (journal-before-apply), so replaying its
                // typed batch units rebuilds the hull and live set the
                // dead worker was maintaining.
                ctx.degraded.store(true, Ordering::SeqCst);
                let generation = ctx.generation.fetch_add(1, Ordering::SeqCst) + 1;
                let t0 = Instant::now();
                let (core, live) = replay_shard(
                    ctx.dim,
                    &st.journal,
                    ctx.workers,
                    ctx.bulk_threshold,
                    &ctx.stats,
                );
                st.core = core;
                st.live = live;
                // Seal an open tail (its marker died with the worker) so
                // every future replay keeps the same batch units — and
                // verify the journal still holds everything this shard
                // already published (typed torn-tail detection, active
                // in release builds too).
                seal_for_replay(&mut st.journal, st.epoch, &ctx.stats);
                // The epoch tracks journaled batch units; `max` keeps it
                // monotone if a batch died between marker and publish.
                st.epoch = st.journal.batch_count().max(st.epoch);
                // Rebuild the replication mirror from the journal — the
                // same source of truth the replay used — so subscribers
                // see exactly the units a future replay would.
                ctx.repl.reset_from(&st.journal);
                store_snap(&ctx.snap, snapshot_of(&st.core, st.epoch));
                let missing = st.core.applied().saturating_sub(st.recorded);
                if missing > 0 {
                    ctx.stats.record_batch(missing);
                }
                st.recorded = st.core.applied();
                ctx.stats
                    .live_points
                    .store(st.live.live() as u64, Ordering::Relaxed);
                ctx.stats
                    .lazy_tombstones
                    .store(st.live.dead_entries() as u64, Ordering::Relaxed);
                let us = t0.elapsed().as_micros() as u64;
                ctx.stats.record_recovery(us, generation as u64);
                if chull_obs::armed() {
                    let m = service_metrics();
                    m.recoveries.incr();
                    m.recovery_us.record(us);
                    // The degraded window is exactly the replay: queries
                    // fall back to the stale snapshot for its duration.
                    m.degraded_us.add(us);
                }
                ctx.degraded.store(false, Ordering::SeqCst);
            }
        }
    }
}

/// Consecutive batches one wakeup may process before the worker
/// re-enters the blocking pop (fairness toward producers waiting on
/// `not_full` and toward shutdown). Each round still journals, applies,
/// and publishes its own batch — the bound only caps how long the
/// worker stays away from the condvar while a deep backlog drains.
const DRAIN_ROUNDS_MAX: usize = 16;

/// The per-shard ingest loop: block for a batch, then keep draining
/// non-blockingly while the queue is deeper than one batch (up to
/// [`DRAIN_ROUNDS_MAX`] rounds); each batch is resolved, journaled,
/// marked, applied, and republished. May panic (failpoints, or a real
/// bug) — the supervisor one frame up recovers.
fn drain_loop(ctx: &ShardCtx, st: &mut ShardState) {
    let mut batch: Vec<Ingest> = Vec::with_capacity(ctx.max_batch);
    // Baseline for per-batch ingest-kernel deltas. Re-initialized from the
    // (possibly replayed) hull on every loop (re)entry, so recovery replay
    // work is never double-counted into the ingest counters.
    let mut prev_kernel = st.core.hull().map(|h| h.kernel).unwrap_or_default();
    if chull_obs::armed() {
        ctx.gauges.workers.set(ctx.workers as i64);
    }
    loop {
        batch.clear();
        if ctx.queue.pop_batch(ctx.max_batch, &mut batch) == 0 {
            // Closed and drained.
            return;
        }
        let mut rounds = 1;
        loop {
            apply_batch(ctx, st, &mut prev_kernel, &mut batch);
            if rounds >= DRAIN_ROUNDS_MAX {
                break;
            }
            batch.clear();
            if ctx.queue.try_pop_batch(ctx.max_batch, &mut batch) == 0 {
                break;
            }
            // A continuation round: the queue was deeper than one batch
            // and the worker kept draining instead of re-parking.
            rounds += 1;
            ctx.stats.queue_drain_rounds.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Process one popped batch: local mutations coalesce into one journal
/// unit; each replicated unit stays **its own** journal unit (the 1:1
/// index mirror replication depends on); flush barriers ack last.
fn apply_batch(
    ctx: &ShardCtx,
    st: &mut ShardState,
    prev_kernel: &mut KernelCounts,
    batch: &mut Vec<Ingest>,
) {
    let mut muts: Vec<Mutation> = Vec::new();
    let mut flushes: Vec<mpsc::Sender<u64>> = Vec::new();
    // (inserts, tombstones, done) per replica-shipped unit.
    type ReplPending = (Vec<Vec<i64>>, Vec<Vec<i64>>, mpsc::Sender<u64>);
    let mut replicas: Vec<ReplPending> = Vec::new();
    let mut checkpoints: Vec<(u64, Vec<Vec<i64>>, mpsc::Sender<u64>)> = Vec::new();
    let mut bulks: Vec<BulkIngest> = Vec::new();
    for item in batch.drain(..) {
        match item {
            Ingest::Mutate(m) => muts.push(m),
            Ingest::Flush(tx) => flushes.push(tx),
            Ingest::Replica {
                inserts,
                tombstones,
                done,
            } => replicas.push((inserts, tombstones, done)),
            Ingest::ReplicaCheckpoint {
                units_after,
                survivors,
                done,
            } => checkpoints.push((units_after, survivors, done)),
            Ingest::ReplicaBulk { units, done } => bulks.push((units, done)),
        }
    }
    for (units, done) in bulks {
        apply_bulk_units(ctx, st, prev_kernel, units);
        let _ = done.send(st.epoch);
    }
    apply_unit(ctx, st, prev_kernel, muts, false);
    for (inserts, tombstones, done) in replicas {
        let unit: Vec<Mutation> = inserts
            .into_iter()
            .map(Mutation::Insert)
            .chain(tombstones.into_iter().map(Mutation::Delete))
            .collect();
        apply_unit(ctx, st, prev_kernel, unit, true);
        service_metrics().repl_units_applied.incr();
        // Receiver may have given up (puller resubscribing) — fine.
        let _ = done.send(st.epoch);
    }
    for (units_after, survivors, done) in checkpoints {
        apply_checkpoint(ctx, st, units_after, survivors);
        service_metrics().repl_units_applied.incr();
        let _ = done.send(st.epoch);
    }
    for tx in flushes {
        // Receiver may have given up (client disconnect) — fine.
        let _ = tx.send(st.epoch);
    }
}

/// Did this unit's tombstones invalidate the current hull? Only a row
/// whose **last** live copy died can matter, and only when it is not
/// strictly inside (a vertex, a boundary point, or — transiently, for
/// buffered-but-unapplied rows — outside). While still bootstrapping
/// (no hull to classify against) any fully-dead row forces a rebuild:
/// the boot buffer may hold it.
fn tombstones_affect_hull(st: &ShardState, tombstones: &[Vec<i64>]) -> bool {
    if tombstones.is_empty() {
        return false;
    }
    match st.core.hull() {
        Some(h) => {
            let mut scratch = KernelCounts::default();
            let mut seen: HashSet<&[i64]> = HashSet::new();
            tombstones.iter().any(|t| {
                st.live.count(t) == 0
                    && seen.insert(t.as_slice())
                    && h.classify(t, &mut scratch) != PointLocation::Inside
            })
        }
        None => tombstones.iter().any(|t| st.live.count(t) == 0),
    }
}

/// Resolve, journal, mark, sync, apply, and publish one batch unit
/// (no-op when nothing survives resolution — batch units are never
/// empty). `replica` marks a follower-applied unit: the window policy
/// does not run (the primary already ran it and shipped the resulting
/// tombstones) and rebuild triggers stay local-only (the primary ships
/// checkpoint units instead) — except a hull-invalidating tombstone,
/// which forces an **in-memory** rebuild so the follower's hull stays
/// correct between checkpoints.
fn apply_unit(
    ctx: &ShardCtx,
    st: &mut ShardState,
    prev_kernel: &mut KernelCounts,
    muts: Vec<Mutation>,
    replica: bool,
) {
    // One relaxed load per batch; timing blocks below pay for
    // `Instant::now` only when telemetry is armed.
    let armed = chull_obs::armed();
    // Resolve every mutation against the live multiset, in arrival
    // order. Journaling then writes inserts before tombstones, which is
    // replay-equivalent to the interleaved order: a delete kills the
    // OLDEST live copy, so survivors are a suffix of each coordinate's
    // arrivals; all of this unit's arrivals share one epoch stamp; and
    // every journaled tombstone found a live copy here, so it finds one
    // on replay too (replay has applied at least as many arrivals by
    // the time its tombstones run).
    let next_epoch = st.epoch + 1;
    let mut inserts: Vec<Vec<i64>> = Vec::new();
    let mut tombstones: Vec<Vec<i64>> = Vec::new();
    let mut misses = 0u64;
    for m in muts {
        match m {
            Mutation::Insert(p) => {
                st.live.insert(p.clone(), next_epoch);
                inserts.push(p);
            }
            Mutation::Delete(p) => match st.live.remove(&p) {
                // A miss is acked but journals nothing: replay would
                // miss identically, so the journal skips it.
                RemoveOutcome::Miss => misses += 1,
                RemoveOutcome::Dec | RemoveOutcome::Gone => tombstones.push(p),
            },
            Mutation::Expire(n) => tombstones.extend(st.live.expire_oldest(n as usize)),
        }
    }
    if !replica {
        let expired = st.live.expire_window(&ctx.window, next_epoch);
        if !expired.is_empty() {
            ctx.stats
                .window_expirations
                .fetch_add(expired.len() as u64, Ordering::Relaxed);
            service_metrics()
                .window_expirations
                .add(expired.len() as u64);
            tombstones.extend(expired);
        }
    }
    if misses > 0 {
        ctx.stats.delete_misses.fetch_add(misses, Ordering::Relaxed);
    }
    if inserts.is_empty() && tombstones.is_empty() {
        return;
    }
    // Journal-before-apply: the whole unit — tombstones included —
    // becomes replayable before any of it touches the hull, so a panic
    // below (even mid-rebuild) loses nothing. The marker behind the ops
    // makes the unit the atomic replay unit. A WAL write error is
    // tolerated (counted), because the in-memory journal stays
    // authoritative for in-process recovery.
    let t_journal = armed.then(Instant::now);
    for p in &inserts {
        if st.journal.append(p).is_err() {
            wal_err(&ctx.stats);
        }
    }
    for p in &tombstones {
        if st.journal.append_tombstone(p).is_err() {
            wal_err(&ctx.stats);
        }
    }
    if st.journal.mark_batch().is_err() {
        wal_err(&ctx.stats);
    }
    if let Some(t0) = t_journal {
        service_metrics()
            .journal_append_us
            .record(t0.elapsed().as_micros() as u64);
    }
    let t_sync = armed.then(Instant::now);
    if st.journal.sync().is_err() {
        wal_err(&ctx.stats);
    }
    if let Some(t0) = t_sync {
        service_metrics()
            .wal_sync_us
            .record(t0.elapsed().as_micros() as u64);
    }
    ctx.stats
        .journal_len
        .store(st.journal.len() as u64, Ordering::Relaxed);
    if !tombstones.is_empty() {
        ctx.stats
            .tombstones
            .fetch_add(tombstones.len() as u64, Ordering::Relaxed);
        service_metrics().tombstones.add(tombstones.len() as u64);
    }
    ctx.stats
        .live_points
        .store(st.live.live() as u64, Ordering::Relaxed);
    ctx.stats
        .lazy_tombstones
        .store(st.live.dead_entries() as u64, Ordering::Relaxed);
    let t_apply = armed.then(Instant::now);
    let inserted = inserts.len() as u64;
    if inserted > 0 {
        // Failpoint `shard.apply.insert`: may panic (worker death
        // between journal and hull) or stall. Evaluated once per point
        // so armed chaos schedules keep their per-insert fire cadence.
        for _ in &inserts {
            let _ = failpoint::eval(sites::SHARD_APPLY);
        }
        // One parallel batch insert (Algorithm 3 from the current hull);
        // bit-deterministic for any worker count, so recovery replay of
        // the marked unit reproduces this exact state.
        st.core.push_batch(&inserts, ctx.workers);
    }
    // Failpoint `shard.drain.before_publish`: the unit is fully
    // applied but the snapshot swap has not happened — the worst
    // spot to die (recovery must republish it from the journal).
    let _ = failpoint::eval(sites::SHARD_BEFORE_PUBLISH);
    // Any journaled unit — tombstone-only included — bumps the epoch:
    // the epoch tracks journaled batch units. Promoted from a
    // debug-only assert: release builds count and log the drift (a
    // torn tail the journal scan could not see) instead of serving
    // silently from a diverged journal.
    st.epoch += 1;
    if st.epoch != st.journal.batch_count() {
        debug_assert_eq!(
            st.epoch,
            st.journal.batch_count(),
            "epoch tracks journaled batch units"
        );
        ctx.stats.torn_tails.fetch_add(1, Ordering::Relaxed);
        service_metrics().torn_tails.incr();
        eprintln!(
            "journal: epoch {} out of step with {} journaled batch units",
            st.epoch,
            st.journal.batch_count()
        );
    }
    ctx.stats.record_batch(inserted);
    st.recorded += inserted;
    // Classify after the batch applied: a row inserted and deleted in
    // this same unit is in the hull by now, so `classify` sees it.
    let need_rebuild = tombstones_affect_hull(st, &tombstones);
    // Mirror the unit into the replication log before the epoch
    // becomes visible, so a subscriber that sees epoch `e` can
    // always fetch every unit below `e`.
    ctx.repl.push_ops(inserts, tombstones);
    let (tomb_trigger, journal_trigger) = if replica {
        (false, false)
    } else {
        let lazy = st.live.dead_entries() as f64;
        let live = st.live.live() as f64;
        (
            lazy > 0.0 && lazy > ctx.rebuild_ratio * live,
            ctx.journal_ratio > 0.0
                && (st.journal.len() as f64) > ctx.journal_ratio * live.max(1.0),
        )
    };
    if need_rebuild || tomb_trigger || journal_trigger {
        rebuild_from_survivors(
            ctx,
            st,
            !replica,
            journal_trigger && !need_rebuild && !tomb_trigger,
        );
    } else {
        store_snap(&ctx.snap, snapshot_of(&st.core, st.epoch));
    }
    if armed {
        let m = service_metrics();
        if inserted > 0 {
            m.batches.incr();
            m.batch_size.record(inserted);
            if let Some(t0) = t_apply {
                let wall = t0.elapsed();
                m.batch_apply_us.record(wall.as_micros() as u64);
                // busy/wall across the pool ≈ realized parallelism of
                // the batch apply (0 when the batch went sequential).
                let busy = st.core.hull().map(|h| h.last_batch.busy_ns).unwrap_or(0);
                if busy > 0 && wall.as_nanos() > 0 {
                    ctx.gauges
                        .parallelism_milli
                        .set((busy as u128 * 1000 / wall.as_nanos()) as i64);
                }
            }
        }
        let now_kernel = st.core.hull().map(|h| h.kernel).unwrap_or_default();
        m.ingest_kernel.fold_delta(&now_kernel, prev_kernel);
        *prev_kernel = now_kernel;
        ctx.gauges.queue_depth.set(ctx.queue.len() as i64);
        ctx.gauges
            .dep_depth
            .set(st.core.hull().map(|h| h.dep_depth()).unwrap_or(0) as i64);
        ctx.gauges.journal_len.set(st.journal.len() as i64);
        ctx.gauges.epoch.set(st.epoch as i64);
        ctx.gauges.live_points.set(st.live.live() as i64);
        ctx.gauges
            .lazy_tombstones
            .set(st.live.dead_entries() as i64);
    }
}

/// Rebuild the shard's hull from the live set's survivors through the
/// parallel bulk constructor. With `checkpoint` (primary-side), the
/// journal is atomically rewritten to one checkpoint unit preserving
/// the cumulative unit index, the replication log ships the checkpoint
/// to followers, and the live set compacts its dead entries; without it
/// (replica-side hull correction), the rebuild is purely in-memory —
/// no journal rewrite, no epoch change — and the primary's own
/// checkpoint unit arrives later. `auto` tags a rebuild that only the
/// journal-ratio trigger asked for (the auto-compaction counter).
fn rebuild_from_survivors(ctx: &ShardCtx, st: &mut ShardState, checkpoint: bool, auto: bool) {
    // Failpoint `shard.rebuild`: may panic (worker death mid-rebuild).
    // Safe at any point in this function: the unit that triggered the
    // rebuild — tombstones included — is journaled and synced, so the
    // supervisor's replay reconstructs the live set and re-runs the
    // rebuild decision.
    let _ = failpoint::eval(sites::SHARD_REBUILD);
    let armed = chull_obs::armed();
    let t0 = Instant::now();
    let survivors = st.live.survivors();
    let (core, _report) = HullBuilder::seed_from_bulk(ctx.dim, &survivors, ctx.workers);
    st.core = core;
    // A rebuild shrinks `applied` to the survivor count; re-baseline so
    // a later recovery never double-counts.
    st.recorded = st.core.applied();
    if checkpoint {
        if st.journal.reset_checkpoint(&survivors).is_err() {
            wal_err(&ctx.stats);
        }
        st.epoch = st.journal.batch_count();
        ctx.repl.push_checkpoint(st.epoch, survivors);
        st.live.compact(st.epoch);
        ctx.stats
            .journal_len
            .store(st.journal.len() as u64, Ordering::Relaxed);
        if auto {
            ctx.stats.auto_compactions.fetch_add(1, Ordering::Relaxed);
        }
    }
    let us = t0.elapsed().as_micros() as u64;
    ctx.stats.rebuilds.fetch_add(1, Ordering::Relaxed);
    ctx.stats.rebuild_us_last.store(us, Ordering::Relaxed);
    ctx.stats.rebuild_us_total.fetch_add(us, Ordering::Relaxed);
    ctx.stats
        .live_points
        .store(st.live.live() as u64, Ordering::Relaxed);
    ctx.stats
        .lazy_tombstones
        .store(st.live.dead_entries() as u64, Ordering::Relaxed);
    store_snap(&ctx.snap, snapshot_of(&st.core, st.epoch));
    if armed {
        let m = service_metrics();
        m.rebuilds.incr();
        m.rebuild_us.record(us);
        if auto {
            m.auto_compactions.incr();
        }
        ctx.gauges.journal_len.set(st.journal.len() as i64);
        ctx.gauges.epoch.set(st.epoch as i64);
        ctx.gauges.live_points.set(st.live.live() as i64);
        ctx.gauges
            .lazy_tombstones
            .set(st.live.dead_entries() as i64);
    }
}

/// Follower-side mirror of a primary checkpoint: replace the journal
/// with the survivors at cumulative unit index `units_after`, rebuild
/// hull and live set from them, and republish. A stale checkpoint (at
/// or below this shard's unit count) is skipped — the follower already
/// holds everything it collapsed.
fn apply_checkpoint(
    ctx: &ShardCtx,
    st: &mut ShardState,
    units_after: u64,
    survivors: Vec<Vec<i64>>,
) {
    if units_after <= st.epoch {
        return;
    }
    let t0 = Instant::now();
    if st
        .journal
        .install_checkpoint(&survivors, units_after)
        .is_err()
    {
        wal_err(&ctx.stats);
    }
    let (core, _report) = HullBuilder::seed_from_bulk(ctx.dim, &survivors, ctx.workers);
    st.core = core;
    st.recorded = st.core.applied();
    st.epoch = units_after;
    let mut live = LiveSet::new();
    for row in &survivors {
        live.insert(row.clone(), units_after);
    }
    st.live = live;
    ctx.repl.push_checkpoint(units_after, survivors);
    let us = t0.elapsed().as_micros() as u64;
    ctx.stats.rebuilds.fetch_add(1, Ordering::Relaxed);
    ctx.stats.rebuild_us_last.store(us, Ordering::Relaxed);
    ctx.stats.rebuild_us_total.fetch_add(us, Ordering::Relaxed);
    ctx.stats
        .journal_len
        .store(st.journal.len() as u64, Ordering::Relaxed);
    ctx.stats
        .live_points
        .store(st.live.live() as u64, Ordering::Relaxed);
    ctx.stats.lazy_tombstones.store(0, Ordering::Relaxed);
    store_snap(&ctx.snap, snapshot_of(&st.core, st.epoch));
    if chull_obs::armed() {
        let m = service_metrics();
        m.rebuilds.incr();
        m.rebuild_us.record(us);
        ctx.gauges.journal_len.set(st.journal.len() as i64);
        ctx.gauges.epoch.set(st.epoch as i64);
        ctx.gauges.live_points.set(st.live.live() as i64);
        ctx.gauges.lazy_tombstones.set(0);
    }
}

/// Follower bootstrap: journal the whole replicated pure-insert prefix
/// as its original batch units (each with its own marker — the 1:1
/// index mirror replication depends on), then build the hull **once**
/// instead of unit by unit — through the bulk constructor when the
/// prefix clears the threshold — and publish a single snapshot for the
/// final epoch.
fn apply_bulk_units(
    ctx: &ShardCtx,
    st: &mut ShardState,
    prev_kernel: &mut KernelCounts,
    units: Vec<Vec<Vec<i64>>>,
) {
    // Bootstrap lands on an empty shard; anything else (a racing unit
    // already applied, a retry after a partial bootstrap) degrades to
    // the ordinary one-unit-at-a-time path for safety.
    if st.core.applied() > 0 || !st.journal.is_empty() {
        for unit in units {
            let unit: Vec<Mutation> = unit.into_iter().map(Mutation::Insert).collect();
            apply_unit(ctx, st, prev_kernel, unit, true);
            service_metrics().repl_units_applied.incr();
        }
        return;
    }
    let armed = chull_obs::armed();
    let t0 = Instant::now();
    let mut inserted = 0u64;
    for unit in &units {
        for p in unit {
            if st.journal.append(p).is_err() {
                wal_err(&ctx.stats);
            }
            inserted += 1;
        }
        if st.journal.mark_batch().is_err() {
            wal_err(&ctx.stats);
        }
    }
    if inserted == 0 {
        return;
    }
    if st.journal.sync().is_err() {
        wal_err(&ctx.stats);
    }
    ctx.stats
        .journal_len
        .store(st.journal.len() as u64, Ordering::Relaxed);
    // One build over the whole prefix: bulk when it clears the
    // threshold, a single incremental replay otherwise.
    st.core = replay_core(
        ctx.dim,
        &st.journal,
        ctx.workers,
        ctx.bulk_threshold,
        &ctx.stats,
    );
    st.epoch = st.journal.batch_count();
    let mut live = LiveSet::new();
    for (i, unit) in units.iter().enumerate() {
        for p in unit {
            live.insert(p.clone(), i as u64 + 1);
        }
    }
    st.live = live;
    ctx.stats
        .live_points
        .store(st.live.live() as u64, Ordering::Relaxed);
    for unit in units {
        ctx.stats.record_batch(unit.len() as u64);
        ctx.repl.push_ops(unit, Vec::new());
        service_metrics().repl_units_applied.incr();
    }
    st.recorded = st.core.applied();
    store_snap(&ctx.snap, snapshot_of(&st.core, st.epoch));
    if armed {
        let m = service_metrics();
        m.batch_apply_us.record(t0.elapsed().as_micros() as u64);
        let now_kernel = st.core.hull().map(|h| h.kernel).unwrap_or_default();
        m.ingest_kernel.fold_delta(&now_kernel, prev_kernel);
        *prev_kernel = now_kernel;
        ctx.gauges.journal_len.set(st.journal.len() as i64);
        ctx.gauges.epoch.set(st.epoch as i64);
        ctx.gauges
            .dep_depth
            .set(st.core.hull().map(|h| h.dep_depth()).unwrap_or(0) as i64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chull_concurrent::failpoint::{FaultPlan, SiteSpec};
    use chull_core::context::prepare_points;
    use chull_core::seq::incremental_hull_run;
    use chull_geometry::{generators, KernelCounts, PointSet};

    fn cfg(dim: usize, shards: usize) -> ServiceConfig {
        ServiceConfig {
            dim,
            shards,
            queue_capacity: 64,
            max_batch: 16,
            workers: 2,
            ..ServiceConfig::default()
        }
    }

    fn insert_all(svc: &HullService, shard: u16, pts: &chull_geometry::PointSet) {
        for p in pts.iter() {
            loop {
                match svc.try_insert(shard, p.to_vec()).unwrap() {
                    InsertOutcome::Queued => break,
                    InsertOutcome::Overloaded => std::thread::yield_now(),
                }
            }
        }
    }

    fn mutate_all(svc: &HullService, shard: u16, muts: Vec<Mutation>) {
        let mut pending = muts;
        while !pending.is_empty() {
            let (accepted, _) = svc.try_mutate(shard, pending.clone()).unwrap();
            pending = pending
                .into_iter()
                .zip(accepted)
                .filter_map(|(m, ok)| (!ok).then_some(m))
                .collect();
            if !pending.is_empty() {
                std::thread::yield_now();
            }
        }
    }

    /// Canonical facet geometry of Algorithm 2 run offline on `rows`.
    fn offline_canonical(
        rows: &[Vec<i64>],
        dim: usize,
    ) -> std::collections::BTreeSet<Vec<Vec<i64>>> {
        let flat: Vec<i64> = rows.iter().flatten().copied().collect();
        let pts = PointSet::from_flat(dim, flat);
        let run = incremental_hull_run(&pts);
        canonical_coords(pts.flat(), &run.output, dim)
    }

    fn snap_canonical(
        snap: &HullSnapshot,
        dim: usize,
    ) -> std::collections::BTreeSet<Vec<Vec<i64>>> {
        canonical_coords(&snap.flat_points(), &snap.output(), dim)
    }

    #[test]
    fn single_shard_matches_offline_hull() {
        let pts = prepare_points(
            &PointSet::from_points2(&generators::disk_2d(300, 1 << 20, 11)),
            12,
        );
        let svc = HullService::new(cfg(2, 1)).unwrap();
        insert_all(&svc, 0, &pts);
        svc.flush(0).unwrap();
        let snap = svc.snapshot(0).unwrap();
        assert!(snap.ready());
        assert_eq!(snap.num_points(), pts.len());
        let offline = incremental_hull_run(&pts);
        // Same point multiset => identical facet geometry; vertex ids may
        // differ (the shard reorders its seed simplex to the front), so
        // compare canonical coordinate sets.
        let served = canonical_coords(&snap.flat_points(), &snap.output(), 2);
        let expect = canonical_coords(pts.flat(), &offline.output, 2);
        assert_eq!(served, expect);
        svc.shutdown();
    }

    fn canonical_coords(
        flat: &[i64],
        out: &chull_core::HullOutput,
        dim: usize,
    ) -> std::collections::BTreeSet<Vec<Vec<i64>>> {
        out.facets
            .iter()
            .map(|f| {
                let mut verts: Vec<Vec<i64>> = f[..dim]
                    .iter()
                    .map(|&v| flat[v as usize * dim..(v as usize + 1) * dim].to_vec())
                    .collect();
                verts.sort();
                verts
            })
            .collect()
    }

    #[test]
    fn shards_are_independent() {
        let svc = HullService::new(cfg(2, 2)).unwrap();
        for p in [[0, 0], [8, 0], [0, 8], [8, 8]] {
            svc.try_insert(0, p.to_vec()).unwrap();
        }
        for p in [[100, 100], [101, 100], [100, 101]] {
            svc.try_insert(1, p.to_vec()).unwrap();
        }
        svc.flush(0).unwrap();
        svc.flush(1).unwrap();
        let s0 = svc.snapshot(0).unwrap();
        let s1 = svc.snapshot(1).unwrap();
        assert_eq!(s0.num_points(), 4);
        assert_eq!(s1.num_points(), 3);
        let mut k = KernelCounts::default();
        assert_eq!(s0.contains(&[4, 4], &mut k), Some(true));
        assert_eq!(s1.contains(&[4, 4], &mut k), Some(false));
    }

    #[test]
    fn bootstrap_buffers_degenerate_prefix() {
        let svc = HullService::new(cfg(2, 1)).unwrap();
        // Collinear prefix: stays in bootstrap.
        for p in [[0, 0], [1, 1], [2, 2], [3, 3]] {
            svc.try_insert(0, p.to_vec()).unwrap();
        }
        svc.flush(0).unwrap();
        let snap = svc.snapshot(0).unwrap();
        assert!(!snap.ready());
        assert_eq!(snap.num_points(), 4);
        // One off-line point completes the simplex; the buffer replays.
        svc.try_insert(0, vec![5, 0]).unwrap();
        svc.flush(0).unwrap();
        let snap = svc.snapshot(0).unwrap();
        assert!(snap.ready());
        assert_eq!(snap.num_points(), 5);
        let mut k = KernelCounts::default();
        assert_eq!(snap.contains(&[2, 1], &mut k), Some(true));
    }

    #[test]
    fn rejects_bad_input() {
        let svc = HullService::new(cfg(2, 1)).unwrap();
        assert!(matches!(
            svc.try_insert(5, vec![0, 0]),
            Err(ServiceError::BadShard(5))
        ));
        assert!(matches!(
            svc.try_insert(0, vec![0, 0, 0]),
            Err(ServiceError::BadPoint(_))
        ));
        assert!(matches!(
            svc.try_insert(0, vec![i64::MAX, 0]),
            Err(ServiceError::BadPoint(_))
        ));
        assert!(matches!(
            svc.try_mutate(0, vec![Mutation::Delete(vec![0, 0, 0])]),
            Err(ServiceError::BadPoint(_))
        ));
        assert!(HullService::new(cfg(1, 1)).is_err());
        assert!(HullService::new(cfg(2, 0)).is_err());
    }

    #[test]
    fn epoch_is_monotone_and_batches_coalesce() {
        let svc = HullService::new(ServiceConfig {
            dim: 2,
            shards: 1,
            queue_capacity: 512,
            max_batch: 64,
            workers: 2,
            ..ServiceConfig::default()
        })
        .unwrap();
        let pts = prepare_points(
            &PointSet::from_points2(&generators::disk_2d(200, 1 << 16, 3)),
            4,
        );
        insert_all(&svc, 0, &pts);
        let e1 = svc.flush(0).unwrap();
        assert!(e1 >= 1);
        let snap = svc.snapshot(0).unwrap();
        assert_eq!(snap.epoch, e1);
        assert_eq!(snap.applied, 200);
        // Flush with nothing pending must not bump the epoch.
        let e2 = svc.flush(0).unwrap();
        assert_eq!(e2, e1);
        let stats = svc.stats_json(Some(0)).unwrap();
        assert!(stats.contains("\"batched_inserts\":200"), "{stats}");
        assert!(stats.contains("\"journal_len\":200"), "{stats}");
        let agg = svc.stats_json(None).unwrap();
        assert!(agg.contains("\"applied_total\":200"), "{agg}");
    }

    #[test]
    fn delete_miss_is_counted_not_journaled() {
        let svc = HullService::new(cfg(2, 1)).unwrap();
        for p in [[0, 0], [9, 0], [0, 9]] {
            svc.try_insert(0, p.to_vec()).unwrap();
        }
        let e1 = svc.flush(0).unwrap();
        mutate_all(&svc, 0, vec![Mutation::Delete(vec![7, 7])]);
        let e2 = svc.flush(0).unwrap();
        // A miss journals nothing, so no unit and no epoch bump.
        assert_eq!(e1, e2);
        let st = svc.stats_for(0).unwrap();
        assert_eq!(st.delete_misses.load(Ordering::Relaxed), 1);
        assert_eq!(st.tombstones.load(Ordering::Relaxed), 0);
        svc.shutdown();
    }

    #[test]
    fn delete_reshapes_hull_end_to_end() {
        let mut config = cfg(2, 1);
        // Keep triggers out of the way: the vertex delete itself must
        // force the rebuild.
        config.rebuild_ratio = 1e9;
        config.journal_ratio = 0.0;
        let svc = HullService::new(config).unwrap();
        let square = vec![vec![0, 0], vec![10, 0], vec![0, 10], vec![10, 10]];
        let spike = vec![40, 5];
        let inner = vec![5, 5];
        let mut rows = square.clone();
        rows.push(spike.clone());
        rows.push(inner.clone());
        mutate_all(
            &svc,
            0,
            rows.iter().cloned().map(Mutation::Insert).collect(),
        );
        svc.flush(0).unwrap();
        let mut k = KernelCounts::default();
        assert_eq!(
            svc.snapshot(0).unwrap().contains(&[20, 5], &mut k),
            Some(true)
        );
        // Interior delete: no rebuild needed, hull unchanged.
        mutate_all(&svc, 0, vec![Mutation::Delete(inner.clone())]);
        svc.flush(0).unwrap();
        let st = svc.stats_for(0).unwrap();
        assert_eq!(st.rebuilds.load(Ordering::Relaxed), 0);
        assert_eq!(st.tombstones.load(Ordering::Relaxed), 1);
        // Vertex delete: the hull must shrink back to the square.
        mutate_all(&svc, 0, vec![Mutation::Delete(spike.clone())]);
        svc.flush(0).unwrap();
        let snap = svc.snapshot(0).unwrap();
        assert_eq!(
            svc.stats_for(0).unwrap().rebuilds.load(Ordering::Relaxed),
            1
        );
        assert_eq!(
            svc.snapshot(0).unwrap().contains(&[20, 5], &mut k),
            Some(false)
        );
        assert_eq!(snap_canonical(&snap, 2), offline_canonical(&square, 2));
        // The checkpoint preserved the cumulative unit index: epochs
        // keep climbing.
        svc.try_insert(0, vec![5, 20]).unwrap();
        let e = svc.flush(0).unwrap();
        assert!(e > snap.epoch);
        svc.shutdown();
    }

    #[test]
    fn count_window_serves_survivor_hull() {
        for workers in [1, 2, 4] {
            let mut config = cfg(2, 1);
            config.workers = workers;
            config.window = WindowPolicy::Count(60);
            let svc = HullService::new(config).unwrap();
            let pts = prepare_points(
                &PointSet::from_points2(&generators::disk_2d(200, 1 << 16, 31)),
                32,
            );
            insert_all(&svc, 0, &pts);
            svc.flush(0).unwrap();
            let snap = svc.snapshot(0).unwrap();
            let st = svc.stats_for(0).unwrap();
            assert_eq!(st.live_points.load(Ordering::Relaxed), 60);
            assert!(st.window_expirations.load(Ordering::Relaxed) >= 140);
            // A count window keeps exactly the newest 60 rows, however
            // the stream was batched.
            let survivors: Vec<Vec<i64>> = pts
                .iter()
                .skip(pts.len() - 60)
                .map(|p| p.to_vec())
                .collect();
            assert_eq!(snap_canonical(&snap, 2), offline_canonical(&survivors, 2));
            svc.shutdown();
        }
    }

    #[test]
    fn journal_ratio_auto_compacts() {
        let dir = std::env::temp_dir().join(format!(
            "chull-shard-autoc-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut config = cfg(2, 1);
        config.wal_dir = Some(dir.clone());
        config.rebuild_ratio = 1e9; // isolate the journal trigger
        config.journal_ratio = 2.0;
        let svc = HullService::new(config.clone()).unwrap();
        // Hull vertices far out; interior rows to insert-and-delete so
        // no delete ever touches the hull.
        for p in [[-50, -50], [50, -50], [-50, 50], [50, 50]] {
            svc.try_insert(0, p.to_vec()).unwrap();
        }
        svc.flush(0).unwrap();
        for i in 0..20i64 {
            mutate_all(&svc, 0, vec![Mutation::Insert(vec![i % 7, i % 5])]);
            svc.flush(0).unwrap();
            mutate_all(&svc, 0, vec![Mutation::Delete(vec![i % 7, i % 5])]);
            svc.flush(0).unwrap();
        }
        let st = svc.stats_for(0).unwrap();
        assert!(st.auto_compactions.load(Ordering::Relaxed) >= 1);
        assert!(st.rebuilds.load(Ordering::Relaxed) >= 1);
        // Compaction shrank the journal: without it the WAL would hold
        // 4 + 40 rows; with the ratio trigger at most two insert/delete
        // pairs ride on top of the 4 checkpointed survivors.
        assert!(st.journal_len.load(Ordering::Relaxed) <= 8);
        assert_eq!(st.live_points.load(Ordering::Relaxed), 4);
        let epoch = svc.flush(0).unwrap();
        svc.shutdown();
        // Restart over the checkpointed WAL: same hull, same epoch
        // (the checkpoint header preserved the unit index).
        let svc = HullService::new(config).unwrap();
        let snap = svc.snapshot(0).unwrap();
        assert_eq!(snap.epoch, epoch);
        assert_eq!(
            snap_canonical(&snap, 2),
            offline_canonical(
                &[vec![-50, -50], vec![50, -50], vec![-50, 50], vec![50, 50]],
                2
            )
        );
        svc.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wal_restart_replays_mixed_ops() {
        let dir = std::env::temp_dir().join(format!(
            "chull-shard-mixed-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut config = cfg(2, 1);
        config.wal_dir = Some(dir.clone());
        config.rebuild_ratio = 1e9;
        config.journal_ratio = 0.0;
        let square = vec![vec![0, 0], vec![10, 0], vec![0, 10], vec![10, 10]];
        {
            let svc = HullService::new(config.clone()).unwrap();
            let mut rows = square.clone();
            rows.push(vec![40, 5]);
            mutate_all(
                &svc,
                0,
                rows.iter().cloned().map(Mutation::Insert).collect(),
            );
            svc.flush(0).unwrap();
            // Vertex delete → in-place rebuild + checkpoint, then one
            // more mixed unit left un-compacted in the journal.
            mutate_all(&svc, 0, vec![Mutation::Delete(vec![40, 5])]);
            svc.flush(0).unwrap();
            mutate_all(
                &svc,
                0,
                vec![
                    Mutation::Insert(vec![5, 5]),
                    Mutation::Insert(vec![30, 30]),
                    Mutation::Delete(vec![30, 30]),
                ],
            );
            svc.flush(0).unwrap();
            svc.shutdown();
        }
        // Restart: replay must honor the tombstones (rebuild from
        // survivors), not just the inserts.
        let svc = HullService::new(config).unwrap();
        let snap = svc.snapshot(0).unwrap();
        let mut expect = square.clone();
        expect.push(vec![5, 5]);
        assert_eq!(snap_canonical(&snap, 2), offline_canonical(&expect, 2));
        let st = svc.stats_for(0).unwrap();
        assert_eq!(st.live_points.load(Ordering::Relaxed), 5);
        // Serving continues across the restart: delete another vertex.
        mutate_all(&svc, 0, vec![Mutation::Delete(vec![10, 10])]);
        svc.flush(0).unwrap();
        let snap = svc.snapshot(0).unwrap();
        let expect = vec![vec![0, 0], vec![10, 0], vec![0, 10], vec![5, 5]];
        assert_eq!(snap_canonical(&snap, 2), offline_canonical(&expect, 2));
        svc.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mid_rebuild_crash_replay_converges() {
        let square = vec![vec![0, 0], vec![10, 0], vec![0, 10], vec![10, 10]];
        let mut recovered = false;
        for round in 0..20 {
            let mut config = cfg(2, 1);
            config.rebuild_ratio = 1e9;
            config.journal_ratio = 0.0;
            let svc = HullService::new(config).unwrap();
            let mut rows = square.clone();
            rows.push(vec![40, 5]);
            mutate_all(
                &svc,
                0,
                rows.iter().cloned().map(Mutation::Insert).collect(),
            );
            svc.flush(0).unwrap();
            failpoint::arm(FaultPlan::new(0x9E8_0000 + round).site(
                sites::SHARD_REBUILD,
                SiteSpec {
                    panic_every: 1,
                    max_fires: 1,
                    ..SiteSpec::default()
                },
            ));
            // Vertex delete triggers a rebuild; the armed failpoint
            // kills the worker inside it.
            mutate_all(&svc, 0, vec![Mutation::Delete(vec![40, 5])]);
            svc.flush(0).unwrap();
            failpoint::disarm();
            let hit = svc.stats_for(0).unwrap().recoveries.load(Ordering::Relaxed) >= 1;
            // Crashed or not, the served hull must converge to the
            // survivors.
            let snap = svc.snapshot(0).unwrap();
            assert_eq!(snap_canonical(&snap, 2), offline_canonical(&square, 2));
            let mut k = KernelCounts::default();
            assert_eq!(snap.contains(&[20, 5], &mut k), Some(false));
            svc.shutdown();
            if hit {
                recovered = true;
                break;
            }
        }
        assert!(recovered, "no injected panic landed in the rebuild");
    }

    #[test]
    fn worker_panic_recovers_bit_identical_hull() {
        let pts = prepare_points(
            &PointSet::from_points2(&generators::disk_2d(250, 1 << 18, 21)),
            22,
        );
        let offline = incremental_hull_run(&pts);
        // The failpoint registry is process-global and other tests insert
        // points concurrently, so an injected panic may land on another
        // (equally recoverable) shard. Re-arm until *this* shard has died
        // at least once; each round replays the same workload into a
        // fresh service.
        let mut recovered = false;
        for round in 0..20 {
            let svc = HullService::new(cfg(2, 1)).unwrap();
            failpoint::arm(
                FaultPlan::new(0x5EED_0000 + round)
                    .site(
                        sites::SHARD_APPLY,
                        SiteSpec {
                            panic_every: 97,
                            max_fires: 2,
                            ..SiteSpec::default()
                        },
                    )
                    .site(
                        sites::SHARD_BEFORE_PUBLISH,
                        SiteSpec {
                            panic_every: 11,
                            max_fires: 1,
                            ..SiteSpec::default()
                        },
                    ),
            );
            insert_all(&svc, 0, &pts);
            let flushed = svc.flush(0).unwrap();
            failpoint::disarm();
            let snap = svc.snapshot(0).unwrap();
            assert_eq!(snap.applied, 250, "acked inserts survive the crash");
            assert!(snap.epoch <= flushed || flushed > 0);
            let served = canonical_coords(&snap.flat_points(), &snap.output(), 2);
            let expect = canonical_coords(pts.flat(), &offline.output, 2);
            assert_eq!(served, expect, "recovered hull differs from offline");
            let stats = svc.stats_json(Some(0)).unwrap();
            assert!(stats.contains("\"batched_inserts\":250"), "{stats}");
            let hit = svc.stats_for(0).unwrap().recoveries.load(Ordering::Relaxed) >= 1;
            assert_eq!(svc.generation(0).unwrap() >= 1, hit);
            svc.shutdown();
            if hit {
                recovered = true;
                break;
            }
        }
        assert!(recovered, "no injected panic landed on the test shard");
    }

    #[test]
    fn wal_restart_replays_previous_run() {
        let dir = std::env::temp_dir().join(format!(
            "chull-shard-wal-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut config = cfg(2, 2);
        config.wal_dir = Some(dir.clone());
        {
            let svc = HullService::new(config.clone()).unwrap();
            for p in [[0, 0], [10, 0], [0, 10], [10, 10]] {
                svc.try_insert(0, p.to_vec()).unwrap();
            }
            svc.try_insert(1, vec![7, 7]).unwrap();
            svc.flush(0).unwrap();
            svc.flush(1).unwrap();
            svc.shutdown();
        }
        // "Restart": a fresh service over the same WAL directory serves
        // the previous run's points before any new insert arrives.
        let svc = HullService::new(config).unwrap();
        let snap = svc.snapshot(0).unwrap();
        assert_eq!(snap.num_points(), 4);
        assert!(snap.ready());
        let mut k = KernelCounts::default();
        assert_eq!(snap.contains(&[5, 5], &mut k), Some(true));
        assert_eq!(svc.snapshot(1).unwrap().num_points(), 1);
        // New inserts append to the recovered state.
        svc.try_insert(0, vec![20, 5]).unwrap();
        svc.flush(0).unwrap();
        assert_eq!(svc.snapshot(0).unwrap().num_points(), 5);
        svc.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bulk_cold_start_matches_incremental_replay() {
        let dir = std::env::temp_dir().join(format!(
            "chull-shard-bulk-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let pts = prepare_points(
            &PointSet::from_points2(&generators::disk_2d(500, 1 << 20, 23)),
            24,
        );
        let mut config = cfg(2, 1);
        config.wal_dir = Some(dir.clone());
        {
            let svc = HullService::new(config.clone()).unwrap();
            insert_all(&svc, 0, &pts);
            svc.flush(0).unwrap();
            svc.shutdown();
        }
        // Restart A: incremental replay (bulk off) — the baseline.
        let baseline = {
            let svc = HullService::new(config.clone()).unwrap();
            let snap = svc.snapshot(0).unwrap();
            assert_eq!(
                svc.stats_for(0)
                    .unwrap()
                    .bulk_builds
                    .load(Ordering::Relaxed),
                0
            );
            let out = canonical_coords(&snap.flat_points(), &snap.output(), 2);
            svc.shutdown();
            out
        };
        // Restart B: bulk divide-and-conquer build over the same WAL.
        config.bulk_threshold = 1;
        let svc = HullService::new(config).unwrap();
        let snap = svc.snapshot(0).unwrap();
        assert!(snap.ready());
        assert_eq!(snap.num_points(), pts.len());
        let stats = svc.stats_for(0).unwrap();
        assert_eq!(stats.bulk_builds.load(Ordering::Relaxed), 1);
        assert!(stats.bulk_pruned.load(Ordering::Relaxed) > 0);
        assert_eq!(
            canonical_coords(&snap.flat_points(), &snap.output(), 2),
            baseline
        );
        // The bulk-seeded hull keeps serving new inserts.
        svc.try_insert(0, vec![(1 << 21) + 7, 0]).unwrap();
        svc.flush(0).unwrap();
        let mut k = KernelCounts::default();
        assert_eq!(
            svc.snapshot(0).unwrap().contains(&[(1 << 21), 0], &mut k),
            Some(true)
        );
        svc.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
