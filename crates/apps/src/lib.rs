//! # chull-apps
//!
//! The Section 7 applications of the paper's support-set framework:
//!
//! * [`halfspace`] — half-plane intersection, both as a direct
//!   configuration space with 2-support and via point-hyperplane duality
//!   (cross-validated against each other);
//! * [`circles`] — intersection of unit circles via incremental arc
//!   clipping with per-arc dependence depths;
//! * [`delaunay`] — 2D Delaunay triangulation through the lifting map onto
//!   a 3D lower hull, certified by the exact `incircle` predicate.

#![warn(missing_docs)]

pub mod circles;
pub mod delaunay;
pub mod halfspace;
