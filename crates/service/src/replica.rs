//! Replication: journal shipping from a primary to follower replicas.
//!
//! Theorem 4.2's order-independence is what makes this safe without
//! consensus: a shard's journaled **batch units** produce the identical
//! hull no matter how their application interleaves, so a follower may
//! fetch units late, twice, or out of order and still converge
//! bit-identical to the primary — batch apply is deterministic per
//! unit, and duplicate points never change a hull.
//!
//! The protocol is *pull-based*. A v5 primary ships flat insert
//! batches (`ReplSubscribe`/`ReplAck`); a v6 primary ships **typed
//! units** (`ReplUnitFetch`): either `Ops` (inserts + tombstones
//! journaled under one marker) or a `Checkpoint` (the survivor set of
//! a tombstone/journal-ratio rebuild, which *replaces* the follower's
//! shard state and moves its cursor past the compacted history). The
//! follower's [`ReplicaPuller`] thread asks for the unit at
//! `from_index = ` its own durable batch count, applies it through the
//! same supervised parallel path local ingest uses — exactly one
//! journal unit, so the follower's batch indices mirror the primary's
//! 1:1 — then acks. Because the resume cursor *is* the follower's own
//! batch count, resubscribe-with-resume after any fault (link loss,
//! dropped shipment, puller death mid-apply) is a plain reconnect:
//! nothing is lost, duplicates are harmless, and the lag the primary
//! reports is exact. Followers never run window expiry or rebuild
//! triggers themselves — the primary decides, and ships the decision
//! as a checkpoint unit.
//!
//! Failure model:
//!
//! * the puller runs under `catch_unwind`; an injected
//!   [`sites::REPL_APPLY`] panic (follower death mid-apply) or any
//!   connection error triggers a counted resubscribe with capped
//!   backoff, resuming from the follower's batch count;
//! * a primary that stays unreachable for
//!   [`FollowOptions::promote_after`] consecutive resubscribes causes
//!   **self-promotion**: the follower leaves read-only mode and serves
//!   writes with the hull it has — epochs stay monotone because the
//!   follower's epoch is its (mirrored) batch count;
//! * reads served while the follower trails its primary are wrapped in
//!   the wire `Stale { lag }` status by the dispatch layer (the
//!   epoch-staleness bound, surfaced in-band), via
//!   [`HullService::replica_lag`].

use crate::client::HullClient;
use crate::journal::{Journal, JournalOp};
use crate::metrics::service_metrics;
use crate::shard::HullService;
use crate::wire::{ReplUnit, CAP_MUTATION, CAP_REPLICATION, PROTOCOL_V5, PROTOCOL_V6};
use chull_concurrent::failpoint::{self, sites, FaultAction};
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::thread::JoinHandle;
use std::time::Duration;

/// The inside of a [`ReplLog`]: a window of typed units starting at
/// absolute index `base`. Units below `base` were compacted away; the
/// oldest held unit is then always a `Checkpoint` a lagging subscriber
/// can reset from.
struct LogInner {
    base: u64,
    units: Vec<Arc<ReplUnit>>,
}

/// One shard's in-memory mirror of its journal batch units, shared
/// between the shard worker (producer) and the wire layer (consumer:
/// `ReplSubscribe`/`ReplUnitFetch`). Invariant: `total() == journal
/// batch count` — the worker pushes each unit before publishing its
/// epoch, and the supervisor rebuilds the mirror from the journal
/// after a crash, so a subscriber that has seen epoch `e` can always
/// fetch every unit below `e` (or the checkpoint superseding them).
pub(crate) struct ReplLog {
    inner: RwLock<LogInner>,
    /// One past the highest unit a subscriber acked durably applied.
    acked: AtomicU64,
}

impl ReplLog {
    pub(crate) fn new() -> ReplLog {
        ReplLog {
            inner: RwLock::new(LogInner {
                base: 0,
                units: Vec::new(),
            }),
            acked: AtomicU64::new(0),
        }
    }

    fn read(&self) -> std::sync::RwLockReadGuard<'_, LogInner> {
        match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    fn write(&self) -> std::sync::RwLockWriteGuard<'_, LogInner> {
        match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Rebuild the mirror from the journal — the same source of truth
    /// recovery replays — used at cold start and after a worker death.
    /// A checkpointed journal (`unit_base() > 0`) maps back to a
    /// leading `Checkpoint` unit: its first marked unit holds the
    /// survivor rows (or, when the checkpoint emptied the shard, a
    /// synthetic empty checkpoint precedes the live units).
    pub(crate) fn reset_from(&self, journal: &Journal) {
        fn split(ops: &[JournalOp]) -> ReplUnit {
            let mut inserts = Vec::new();
            let mut tombstones = Vec::new();
            for op in ops {
                match op {
                    JournalOp::Insert(p) => inserts.push(p.clone()),
                    JournalOp::Tombstone(p) => tombstones.push(p.clone()),
                }
            }
            ReplUnit::Ops {
                inserts,
                tombstones,
            }
        }
        let ub = journal.unit_base();
        let (base, units) = if ub == 0 {
            let units = journal.batches().map(|b| Arc::new(split(b))).collect();
            (0, units)
        } else if journal.checkpoint_rows() > 0 {
            // First marked unit = the checkpoint's survivor rows.
            let mut units: Vec<Arc<ReplUnit>> = Vec::new();
            for (i, b) in journal.batches().enumerate() {
                if i == 0 {
                    let survivors = b
                        .iter()
                        .filter_map(|op| match op {
                            JournalOp::Insert(p) => Some(p.clone()),
                            JournalOp::Tombstone(_) => None,
                        })
                        .collect();
                    units.push(Arc::new(ReplUnit::Checkpoint {
                        units_after: ub + 1,
                        survivors,
                    }));
                } else {
                    units.push(Arc::new(split(b)));
                }
            }
            (ub, units)
        } else {
            // Checkpoint emptied the shard: no survivor unit on disk.
            let mut units = vec![Arc::new(ReplUnit::Checkpoint {
                units_after: ub,
                survivors: Vec::new(),
            })];
            units.extend(journal.batches().map(|b| Arc::new(split(b))));
            (ub - 1, units)
        };
        let mut g = self.write();
        g.base = base;
        g.units = units;
    }

    /// Append one just-journaled ops unit.
    pub(crate) fn push_ops(&self, inserts: Vec<Vec<i64>>, tombstones: Vec<Vec<i64>>) {
        self.write().units.push(Arc::new(ReplUnit::Ops {
            inserts,
            tombstones,
        }));
    }

    /// Replace the whole mirror with one checkpoint unit: the primary
    /// rebuilt from `survivors` and its batch count is now
    /// `units_after`. Subscribers below the checkpoint reset from it.
    pub(crate) fn push_checkpoint(&self, units_after: u64, survivors: Vec<Vec<i64>>) {
        let mut g = self.write();
        g.base = units_after.saturating_sub(1);
        g.units = vec![Arc::new(ReplUnit::Checkpoint {
            units_after,
            survivors,
        })];
    }

    /// The unit a subscriber at absolute cursor `from` needs: `None`
    /// when caught up; the checkpoint at `base` when `from` points
    /// into compacted history; otherwise the unit at `from` itself.
    /// The returned index is the unit's absolute position (it may be
    /// *below* `from` for the checkpoint case).
    pub(crate) fn get_abs(&self, from: u64) -> Option<(u64, Arc<ReplUnit>)> {
        let g = self.read();
        let total = g.base + g.units.len() as u64;
        if from >= total {
            return None;
        }
        if from < g.base {
            // Compacted past the cursor: the oldest held unit is the
            // checkpoint the subscriber must reset from.
            return Some((g.base, Arc::clone(&g.units[0])));
        }
        let i = (from - g.base) as usize;
        Some((from, Arc::clone(&g.units[i])))
    }

    /// Batch units represented (== the shard's journal batch count).
    pub(crate) fn total(&self) -> u64 {
        let g = self.read();
        g.base + g.units.len() as u64
    }

    /// Record a subscriber ack; keeps the high-water mark. Returns
    /// `(acked, total)` for the gauge refresh.
    pub(crate) fn record_ack(&self, index: u64) -> (u64, u64) {
        let total = self.total();
        let index = index.min(total);
        let acked = self.acked.fetch_max(index, Ordering::SeqCst).max(index);
        (acked, total)
    }

    /// The ack high-water mark.
    pub(crate) fn acked(&self) -> u64 {
        self.acked.load(Ordering::SeqCst)
    }
}

/// Shared follower-side replication state: what the puller knows about
/// its primary, read by the dispatch layer (staleness bound for the
/// `Stale` wrapper) and by harnesses (fault-coverage assertions).
pub struct ReplicaState {
    /// Per-shard primary batch totals from the last reply seen.
    primary_total: Vec<AtomicU64>,
    applied: AtomicU64,
    resubscribes: AtomicU64,
    dropped: AtomicU64,
    promoted: AtomicBool,
    stop: AtomicBool,
}

impl ReplicaState {
    fn new(shards: usize) -> ReplicaState {
        ReplicaState {
            primary_total: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            applied: AtomicU64::new(0),
            resubscribes: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            promoted: AtomicBool::new(false),
            stop: AtomicBool::new(false),
        }
    }

    /// The primary's batch-unit total for `shard`, as last observed.
    pub fn primary_total(&self, shard: u16) -> u64 {
        self.primary_total
            .get(shard as usize)
            .map(|t| t.load(Ordering::SeqCst))
            .unwrap_or(0)
    }

    fn note_total(&self, shard: u16, total: u64) {
        if let Some(t) = self.primary_total.get(shard as usize) {
            t.store(total, Ordering::SeqCst);
        }
    }

    /// Batch units this follower has applied through its puller.
    pub fn applied(&self) -> u64 {
        self.applied.load(Ordering::SeqCst)
    }

    /// Resubscribe-with-resume attempts (link loss, fault, panic).
    pub fn resubscribes(&self) -> u64 {
        self.resubscribes.load(Ordering::SeqCst)
    }

    /// Fetched units dropped before apply by the `replica.apply`
    /// failpoint (each forces a duplicate re-fetch).
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::SeqCst)
    }

    /// Whether this follower promoted itself (primary unreachable).
    pub fn promoted(&self) -> bool {
        self.promoted.load(Ordering::SeqCst)
    }
}

/// Configuration for [`follow`].
#[derive(Debug, Clone)]
pub struct FollowOptions {
    /// The primary's wire address (`host:port`).
    pub primary: String,
    /// Idle poll interval while caught up.
    pub poll: Duration,
    /// Connect deadline per subscription attempt.
    pub connect_deadline: Duration,
    /// Self-promote (leave read-only mode, stop pulling) after this
    /// many consecutive failed resubscribes; `0` never promotes.
    pub promote_after: u32,
}

impl Default for FollowOptions {
    fn default() -> FollowOptions {
        FollowOptions {
            primary: String::new(),
            poll: Duration::from_millis(2),
            connect_deadline: Duration::from_secs(2),
            promote_after: 40,
        }
    }
}

/// A running follower puller; [`ReplicaHandle::stop`] (or drop) joins
/// the thread. The service stays usable afterwards (still read-only
/// unless promoted).
pub struct ReplicaHandle {
    state: Arc<ReplicaState>,
    thread: Option<JoinHandle<()>>,
}

impl ReplicaHandle {
    /// The shared replication state (counters, primary totals).
    pub fn state(&self) -> Arc<ReplicaState> {
        Arc::clone(&self.state)
    }

    /// Signal the puller to exit and join it. Idempotent.
    pub fn stop(&mut self) {
        self.state.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.thread.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ReplicaHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Turn `service` into a read-only follower of `opts.primary`: marks it
/// read-only, attaches shared [`ReplicaState`] (enabling the `Stale`
/// read wrapper), and starts the supervised puller thread.
pub fn follow(service: Arc<HullService>, opts: FollowOptions) -> ReplicaHandle {
    let state = Arc::new(ReplicaState::new(service.num_shards()));
    service.set_read_only(true);
    service.attach_replica_state(Arc::clone(&state));
    let st = Arc::clone(&state);
    let thread = std::thread::spawn(move || puller(&service, &st, &opts));
    ReplicaHandle {
        state,
        thread: Some(thread),
    }
}

/// The puller supervisor: run subscription sessions under
/// `catch_unwind`; on any error or injected panic, count a resubscribe,
/// back off (capped), and resume from the follower's own batch count.
fn puller(service: &HullService, state: &ReplicaState, opts: &FollowOptions) {
    let mut backoff = Duration::from_millis(5);
    let mut consecutive_failures = 0u32;
    loop {
        if state.stop.load(Ordering::SeqCst) {
            return;
        }
        let run = catch_unwind(AssertUnwindSafe(|| session(service, state, opts)));
        match run {
            // Stop requested from inside the session loop.
            Ok(Ok(())) => return,
            Ok(Err(e)) => {
                // Did this session make progress before dying? Progress
                // resets the promotion clock.
                if matches!(e.kind(), io::ErrorKind::ConnectionRefused) {
                    consecutive_failures = consecutive_failures.saturating_add(1);
                } else {
                    consecutive_failures = 1;
                }
            }
            // Injected (or real) panic mid-apply: the shard supervisor
            // already replayed the journal; resume from batch count.
            Err(_) => consecutive_failures = 1,
        }
        state.resubscribes.fetch_add(1, Ordering::SeqCst);
        service_metrics().repl_resubscribes.incr();
        if opts.promote_after != 0 && consecutive_failures >= opts.promote_after {
            // The primary is gone. Promote: leave read-only mode and
            // serve writes from the converged hull. Epochs stay
            // monotone — the follower's epoch is its batch count.
            state.promoted.store(true, Ordering::SeqCst);
            service.set_read_only(false);
            service_metrics().repl_failovers.incr();
            return;
        }
        std::thread::sleep(backoff);
        backoff = (backoff * 2).min(Duration::from_millis(200));
    }
}

/// One subscription session: connect, then pull/apply/ack round-robin
/// across shards until an error (resubscribe) or stop. `Ok(())` only on
/// a requested stop. The session speaks typed v6 units when the
/// primary offers `CAP_MUTATION`, falling back to flat v5 batches
/// otherwise (a v5 primary by definition has no tombstones to ship).
fn session(service: &HullService, state: &ReplicaState, opts: &FollowOptions) -> io::Result<()> {
    let mut client = HullClient::builder(opts.primary.clone())
        .deadline(opts.connect_deadline)
        .connect()?;
    if client.negotiated_version() < PROTOCOL_V5 || client.caps() & CAP_REPLICATION == 0 {
        return Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "primary does not ship journal batches (needs wire v5 + CAP_REPLICATION)",
        ));
    }
    let v6 = client.negotiated_version() >= PROTOCOL_V6 && client.caps() & CAP_MUTATION != 0;
    let shards = service.num_shards() as u16;
    for shard in 0..shards {
        if v6 {
            bootstrap_bulk_v6(service, state, &mut client, shard)?;
        } else {
            bootstrap_bulk(service, state, &mut client, shard)?;
        }
    }
    loop {
        if state.stop.load(Ordering::SeqCst) {
            return Ok(());
        }
        let mut caught_up = true;
        for shard in 0..shards {
            let progressed = if v6 {
                pull_unit_v6(service, state, &mut client, shard)?
            } else {
                pull_unit_v5(service, state, &mut client, shard)?
            };
            if progressed {
                caught_up = false;
            }
        }
        if caught_up {
            std::thread::sleep(opts.poll);
        }
    }
}

/// Pull and apply one typed unit for `shard` (v6 path). Returns
/// whether the shard made (or still needs) progress.
fn pull_unit_v6(
    service: &HullService,
    state: &ReplicaState,
    client: &mut HullClient,
    shard: u16,
) -> io::Result<bool> {
    let dim = service.config().dim;
    let from = service.batch_units(shard).map_err(svc_err)?;
    let (index, total, unit_dim, unit) = client.repl_unit_fetch(shard, from)?;
    state.note_total(shard, total);
    let has_rows = match &unit {
        ReplUnit::Ops {
            inserts,
            tombstones,
        } => !inserts.is_empty() || !tombstones.is_empty(),
        ReplUnit::Checkpoint { survivors, .. } => !survivors.is_empty(),
    };
    if has_rows && unit_dim != dim {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("primary ships dimension {unit_dim}, follower is {dim}"),
        ));
    }
    let mut progressed = false;
    match unit {
        ReplUnit::Checkpoint {
            units_after,
            survivors,
        } => {
            // The primary compacted past our cursor: replace shard
            // state with the survivors and jump to `units_after`. A
            // checkpoint at or below our cursor is a duplicate — skip.
            if units_after > from {
                progressed = true;
                if failpoint::eval(sites::REPL_APPLY) == FaultAction::SpuriousFull {
                    state.dropped.fetch_add(1, Ordering::SeqCst);
                } else {
                    service
                        .apply_replica_checkpoint(shard, units_after, survivors)
                        .map_err(svc_err)?;
                    state.applied.fetch_add(1, Ordering::SeqCst);
                    let durable = service.batch_units(shard).map_err(svc_err)?;
                    let _ = client.repl_ack(shard, durable)?;
                }
            }
        }
        ReplUnit::Ops {
            inserts,
            tombstones,
        } => {
            // `index < from` is a duplicated/reordered shipment of a
            // unit this follower already holds: skip it (idempotent).
            if index == from && (!inserts.is_empty() || !tombstones.is_empty()) {
                progressed = true;
                // Failpoint `replica.apply`: follower death mid-apply
                // (panic → resubscribe-with-resume one frame up) or a
                // dropped fetched unit (forces a duplicate re-fetch).
                if failpoint::eval(sites::REPL_APPLY) == FaultAction::SpuriousFull {
                    state.dropped.fetch_add(1, Ordering::SeqCst);
                } else {
                    service
                        .apply_replica_ops(shard, inserts, tombstones)
                        .map_err(svc_err)?;
                    state.applied.fetch_add(1, Ordering::SeqCst);
                    let durable = service.batch_units(shard).map_err(svc_err)?;
                    let _ = client.repl_ack(shard, durable)?;
                }
            }
        }
    }
    if total > service.batch_units(shard).map_err(svc_err)? {
        progressed = true;
    }
    Ok(progressed)
}

/// Pull and apply one flat insert batch for `shard` (v5 fallback).
fn pull_unit_v5(
    service: &HullService,
    state: &ReplicaState,
    client: &mut HullClient,
    shard: u16,
) -> io::Result<bool> {
    let dim = service.config().dim;
    let from = service.batch_units(shard).map_err(svc_err)?;
    let (index, total, unit_dim, flat) = client.repl_fetch(shard, from)?;
    state.note_total(shard, total);
    if !flat.is_empty() && unit_dim != dim {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("primary ships dimension {unit_dim}, follower is {dim}"),
        ));
    }
    let mut progressed = false;
    // `index < from` is a duplicated/reordered shipment of a unit this
    // follower already holds: skip it (idempotent).
    if index == from && !flat.is_empty() {
        progressed = true;
        // Failpoint `replica.apply`: follower death mid-apply (panic →
        // resubscribe-with-resume one frame up) or a dropped fetched
        // batch (forces a duplicate re-fetch).
        if failpoint::eval(sites::REPL_APPLY) == FaultAction::SpuriousFull {
            state.dropped.fetch_add(1, Ordering::SeqCst);
        } else {
            let unit: Vec<Vec<i64>> = flat.chunks(dim).map(|c| c.to_vec()).collect();
            service.apply_replica_unit(shard, unit).map_err(svc_err)?;
            state.applied.fetch_add(1, Ordering::SeqCst);
            let durable = service.batch_units(shard).map_err(svc_err)?;
            let _ = client.repl_ack(shard, durable)?;
        }
    }
    if total > service.batch_units(shard).map_err(svc_err)? {
        progressed = true;
    }
    Ok(progressed)
}

/// Follower **bulk bootstrap** over typed v6 units: when a shard is
/// completely empty and the bulk threshold is armed, scan the
/// primary's journaled prefix and — if it is pure insert history —
/// install it through the bulk divide-and-conquer constructor
/// ([`HullService::apply_replica_bulk`], DESIGN §S21): one hull build
/// instead of per-unit incremental replay, while still journaling and
/// marking every unit so the follower's batch-index mirror stays 1:1.
/// Any checkpoint or tombstone-bearing unit in the prefix abandons the
/// bootstrap (the per-unit loop resets from the checkpoint instead —
/// that path is already one bulk build).
fn bootstrap_bulk_v6(
    service: &HullService,
    state: &ReplicaState,
    client: &mut HullClient,
    shard: u16,
) -> io::Result<()> {
    let threshold = service.config().bulk_threshold;
    if threshold == 0 || service.batch_units(shard).map_err(svc_err)? != 0 {
        return Ok(());
    }
    let dim = service.config().dim;
    let mut units: Vec<Vec<Vec<i64>>> = Vec::new();
    let mut points = 0usize;
    loop {
        let from = units.len() as u64;
        let (index, total, unit_dim, unit) = client.repl_unit_fetch(shard, from)?;
        state.note_total(shard, total);
        match unit {
            ReplUnit::Checkpoint { .. } => return Ok(()),
            ReplUnit::Ops {
                inserts,
                tombstones,
            } => {
                if index != from || (inserts.is_empty() && tombstones.is_empty()) {
                    break;
                }
                if !tombstones.is_empty() {
                    return Ok(());
                }
                if unit_dim != dim {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("primary ships dimension {unit_dim}, follower is {dim}"),
                    ));
                }
                points += inserts.len();
                units.push(inserts);
                if from + 1 >= total {
                    break;
                }
            }
        }
    }
    if units.is_empty() || points < threshold {
        return Ok(());
    }
    let applied = units.len() as u64;
    service.apply_replica_bulk(shard, units).map_err(svc_err)?;
    state.applied.fetch_add(applied, Ordering::SeqCst);
    let durable = service.batch_units(shard).map_err(svc_err)?;
    let _ = client.repl_ack(shard, durable)?;
    eprintln!(
        "replica: shard {shard} bootstrapped {points} points / {applied} units via bulk build"
    );
    Ok(())
}

/// Follower bulk bootstrap over flat v5 batches (see
/// [`bootstrap_bulk_v6`]); kept for primaries without `CAP_MUTATION`.
fn bootstrap_bulk(
    service: &HullService,
    state: &ReplicaState,
    client: &mut HullClient,
    shard: u16,
) -> io::Result<()> {
    let threshold = service.config().bulk_threshold;
    if threshold == 0 || service.batch_units(shard).map_err(svc_err)? != 0 {
        return Ok(());
    }
    let dim = service.config().dim;
    let mut units: Vec<Vec<Vec<i64>>> = Vec::new();
    let mut points = 0usize;
    loop {
        let from = units.len() as u64;
        let (index, total, unit_dim, flat) = client.repl_fetch(shard, from)?;
        state.note_total(shard, total);
        if flat.is_empty() || index != from {
            break;
        }
        if unit_dim != dim {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("primary ships dimension {unit_dim}, follower is {dim}"),
            ));
        }
        points += flat.len() / dim;
        units.push(flat.chunks(dim).map(|c| c.to_vec()).collect());
        if from + 1 >= total {
            break;
        }
    }
    if units.is_empty() || points < threshold {
        return Ok(());
    }
    let applied = units.len() as u64;
    service.apply_replica_bulk(shard, units).map_err(svc_err)?;
    state.applied.fetch_add(applied, Ordering::SeqCst);
    let durable = service.batch_units(shard).map_err(svc_err)?;
    let _ = client.repl_ack(shard, durable)?;
    eprintln!(
        "replica: shard {shard} bootstrapped {points} points / {applied} units via bulk build"
    );
    Ok(())
}

fn svc_err(e: crate::shard::ServiceError) -> io::Error {
    io::Error::other(e.to_string())
}
