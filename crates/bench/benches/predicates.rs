//! Predicate kernel microbenchmarks: the exact integer fast paths, the
//! arbitrary-precision fallbacks, and the filtered float predicates.

use chull_geometry::exact::det_sign_i64;
use chull_geometry::predicates::{self, float};
use chull_geometry::{Point2f, Point2i, Point3f, Point3i};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_predicates(c: &mut Criterion) {
    let a2 = Point2i::new(12345, -6789);
    let b2 = Point2i::new(-4242, 9001);
    let c2 = Point2i::new(777, 31337);
    c.bench_function("orient2d_i64", |b| {
        b.iter(|| predicates::orient2d(a2, b2, c2));
    });

    let a3 = Point3i::new(1, 2, 3);
    let b3 = Point3i::new(-7, 11, 5);
    let c3 = Point3i::new(13, -17, 19);
    let d3 = Point3i::new(23, 29, -31);
    c.bench_function("orient3d_i64_fast", |b| {
        b.iter(|| predicates::orient3d(a3, b3, c3, d3));
    });
    let big = 1i64 << 45; // beyond the i128 fast-path limit
    let a3b = Point3i::new(big, big + 2, big + 3);
    let b3b = Point3i::new(big - 7, big + 11, big + 5);
    let c3b = Point3i::new(big + 13, big - 17, big + 19);
    let d3b = Point3i::new(big + 23, big + 29, big - 31);
    c.bench_function("orient3d_i64_bareiss", |b| {
        b.iter(|| predicates::orient3d(a3b, b3b, c3b, d3b));
    });

    let rows5: Vec<Vec<i64>> = vec![
        vec![3, 1, 4, 1, 5],
        vec![9, 2, 6, 5, 3],
        vec![5, 8, 9, 7, 9],
        vec![3, 2, 3, 8, 4],
        vec![6, 2, 6, 4, 3],
    ];
    c.bench_function("det5_bareiss", |b| {
        b.iter(|| det_sign_i64(&rows5));
    });

    let fa = Point2f::new(0.1, 0.2);
    let fb = Point2f::new(3.4, -1.2);
    let fc = Point2f::new(-5.0, 2.2);
    c.bench_function("orient2d_f64_filtered", |b| {
        b.iter(|| float::orient2d(fa, fb, fc));
    });
    // Near-degenerate: forces the exact expansion fallback.
    let ga = Point2f::new(12.0, 12.0);
    let gb = Point2f::new(24.0, 24.0);
    let gq = Point2f::new(0.5 + f64::EPSILON, 0.5);
    c.bench_function("orient2d_f64_exact_fallback", |b| {
        b.iter(|| float::orient2d(gq, ga, gb));
    });

    let pa = Point3f::new(0.0, 0.0, 0.0);
    let pb = Point3f::new(1.0, 0.0, 0.0);
    let pc = Point3f::new(0.0, 1.0, 0.0);
    let pd = Point3f::new(0.3, 0.3, 1e-14);
    c.bench_function("orient3d_f64_filtered", |b| {
        b.iter(|| float::orient3d(pa, pb, pc, pd));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_predicates
}
criterion_main!(benches);
