//! Microbenchmarks of the three `InsertAndSet`/`GetValue` engines
//! (Algorithm 4 CAS, Algorithm 5 TAS, sharded locked).

use chull_concurrent::{RidgeMapCas, RidgeMapLocked, RidgeMapTas};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

const KEYS: usize = 1 << 16;

fn run_pairs(insert: impl Fn(u64, u32) -> bool, get: impl Fn(u64, u32) -> u32) {
    for k in 0..KEYS as u64 {
        insert(k, (2 * k) as u32);
    }
    for k in 0..KEYS as u64 {
        if !insert(k, (2 * k + 1) as u32) {
            std::hint::black_box(get(k, (2 * k + 1) as u32));
        }
    }
}

fn bench_maps(c: &mut Criterion) {
    let mut group = c.benchmark_group("ridge_map");
    group.throughput(Throughput::Elements(2 * KEYS as u64));
    group.bench_function(BenchmarkId::new("cas", KEYS), |b| {
        b.iter(|| {
            let m: RidgeMapCas<u64> = RidgeMapCas::with_capacity(KEYS);
            run_pairs(|k, v| m.insert_and_set(k, v), |k, n| m.get_value(k, n));
        });
    });
    group.bench_function(BenchmarkId::new("tas", KEYS), |b| {
        b.iter(|| {
            let m: RidgeMapTas<u64> = RidgeMapTas::with_capacity(KEYS);
            run_pairs(|k, v| m.insert_and_set(k, v), |k, n| m.get_value(k, n));
        });
    });
    group.bench_function(BenchmarkId::new("locked", KEYS), |b| {
        b.iter(|| {
            let m: RidgeMapLocked<u64> = RidgeMapLocked::with_capacity(KEYS);
            run_pairs(|k, v| m.insert_and_set(k, v), |k, n| m.get_value(k, n));
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_maps
}
criterion_main!(benches);
