//! Lock-free telemetry for the hull engines and the serving subsystem.
//!
//! Everything here is std-only and built around one contract: **the
//! disarmed cost of an instrumentation site is a single relaxed atomic
//! load**. Offline engine runs (the `hull` CLI, unit tests, benches
//! that measure the algorithms themselves) never pay for telemetry;
//! [`arm`] is flipped exactly once, by `chull_service::server::serve`,
//! because a long-lived server is precisely the process that must be
//! observable.
//!
//! Primitives:
//!
//! * [`Counter`] — monotone u64, cache-line-sharded per-thread stripes
//!   (same philosophy as `concurrent::counters::StripedCounter`),
//!   folded on read; exact at quiescence.
//! * [`Gauge`] — a single signed last-value cell (set/add), for
//!   levels such as queue depth or publication epoch.
//! * [`Histogram`] — 65 log₂ buckets over `u64` with exact `sum`,
//!   `count` and `max` side-totals; snapshots are mergeable and
//!   diffable, and quantile readout is clamped to the observed max.
//! * [`trace`] — a bounded ring-buffer event tracer with seeded
//!   sampling (ChaCha8 from one u64, replayable like
//!   `concurrent::failpoint`).
//! * [`registry`] — the process-global name → metric table rendered as
//!   Prometheus text exposition, served over the wire protocol
//!   (`Metrics` op) and plain HTTP ([`serve_metrics_http`]).
//!
//! With the `noop` cargo feature, [`armed`] is a compile-time `false`
//! and every record path folds away — the basis of the `BENCH_obs.json`
//! A/B overhead gate.

#![warn(missing_docs)]

pub mod counter;
pub mod histogram;
pub mod http;
pub mod registry;
pub mod trace;

pub use counter::{Counter, Gauge};
pub use histogram::{bucket_index, bucket_upper, Histogram, HistogramSnapshot, BUCKETS};
pub use http::{serve_metrics_http, MetricsHttpHandle, RenderHook};
pub use registry::{registry, Registry};
pub use trace::{trace, trace_arm, trace_disarm, trace_events, trace_stats, TraceEvent};

use std::sync::atomic::{AtomicBool, Ordering};

static ARMED: AtomicBool = AtomicBool::new(false);

/// Whether instrumentation sites record. One relaxed load; with the
/// `noop` feature this is a compile-time `false` and callers'
/// `if armed()` blocks are dead code.
#[inline(always)]
pub fn armed() -> bool {
    cfg!(not(feature = "noop")) && ARMED.load(Ordering::Relaxed)
}

/// Turn recording on, process-wide. Idempotent; called by the server
/// on startup. Tests that arm never disarm (arming is behavior-neutral
/// and the flag is global to the test binary).
pub fn arm() {
    ARMED.store(true, Ordering::SeqCst);
}

/// Turn recording back off (already-folded values are kept).
pub fn disarm() {
    ARMED.store(false, Ordering::SeqCst);
}
