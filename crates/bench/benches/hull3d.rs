//! 3D hull benchmarks: ball (small hull) vs near-sphere (Theta(n) hull).

use chull_bench::{prepared_ball_3d, prepared_sphere_3d};
use chull_core::par::{parallel_hull, ParOptions};
use chull_core::seq::incremental_hull_run;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_hull3d(c: &mut Criterion) {
    let mut group = c.benchmark_group("hull3d");
    for (dist, n) in [("ball", 50_000usize), ("near_sphere", 20_000)] {
        let pts = if dist == "ball" {
            prepared_ball_3d(n, 9)
        } else {
            prepared_sphere_3d(n, 9)
        };
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(
            BenchmarkId::new(format!("{dist}_seq"), n),
            &pts,
            |b, pts| b.iter(|| incremental_hull_run(pts)),
        );
        group.bench_with_input(
            BenchmarkId::new(format!("{dist}_par"), n),
            &pts,
            |b, pts| b.iter(|| parallel_hull(pts, ParOptions::default())),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_hull3d
}
criterion_main!(benches);
