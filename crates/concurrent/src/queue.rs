//! A bounded MPMC queue with explicit backpressure, built for the
//! hull service's batched ingest pipeline.
//!
//! Design goals, in order:
//!
//! 1. **Bounded** — the queue never grows past its capacity; a full queue
//!    rejects [`BoundedQueue::try_push`] with the value handed back, so the
//!    caller can reply `Overloaded` instead of buffering unboundedly.
//! 2. **Batch-friendly** — [`BoundedQueue::pop_batch`] blocks for the
//!    first item, then drains everything queued up to a limit in one lock
//!    acquisition. This is the coalescing primitive: a consumer that falls
//!    behind automatically processes bigger batches, which amortizes the
//!    per-batch cost (snapshot republication, in the service's case).
//! 3. **Closable** — [`BoundedQueue::close`] wakes every sleeper; blocked
//!    pushes fail with [`PushError::Closed`], and poppers drain what is
//!    left and then observe emptiness.
//!
//! A `Mutex<VecDeque>` with two condvars is deliberately chosen over a
//! lock-free ring: producers and consumers batch at both ends, so the
//! lock is held for O(1) amortized work per item and measures far from
//! the bottleneck (the consumer does geometry between pops).
//!
//! When `chull_obs` is armed (i.e. inside a server process), every
//! queue additionally reports accepted pushes, `Full` rejections and
//! drain batch sizes into the global metric registry; disarmed cost is
//! one relaxed load per operation.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, OnceLock};
use std::time::Duration;

/// Registry handles shared by every queue instance (queues are
/// per-shard; the series aggregate over all of them).
struct QueueMetrics {
    push: std::sync::Arc<chull_obs::Counter>,
    full: std::sync::Arc<chull_obs::Counter>,
    batch_items: std::sync::Arc<chull_obs::Histogram>,
}

fn metrics() -> &'static QueueMetrics {
    static M: OnceLock<QueueMetrics> = OnceLock::new();
    M.get_or_init(|| {
        let r = chull_obs::registry();
        QueueMetrics {
            push: r.counter(
                "chull_queue_push_total",
                "Items accepted by BoundedQueue push/try_push across all queues.",
            ),
            full: r.counter(
                "chull_queue_full_total",
                "try_push rejections from a full queue (backpressure), including failpoint-injected spurious Full.",
            ),
            batch_items: r.histogram(
                "chull_queue_pop_batch_items",
                "Items drained per pop_batch call (ingest coalescing batch size).",
            ),
        }
    })
}

/// Why a push did not enqueue.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// Queue at capacity; the value is handed back (backpressure signal).
    Full(T),
    /// Queue closed; no further pushes will ever succeed.
    Closed(T),
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer multi-consumer queue; see module docs.
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    capacity: usize,
    not_empty: Condvar,
    not_full: Condvar,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` items (at least 1).
    pub fn new(capacity: usize) -> BoundedQueue<T> {
        let capacity = capacity.max(1);
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            capacity,
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    /// The fixed capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items currently queued (a racy gauge, exact only at quiescence).
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().items.len()
    }

    /// True iff no items are queued right now.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True once [`BoundedQueue::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.inner.lock().unwrap().closed
    }

    /// Enqueue without blocking; a full or closed queue hands the value
    /// back so the caller can apply backpressure.
    ///
    /// Failpoint `queue.push`: an armed chaos schedule may report
    /// spurious `Full` here without consulting the queue, exercising
    /// the caller's backpressure/retry path.
    pub fn try_push(&self, value: T) -> Result<(), PushError<T>> {
        if crate::failpoint::eval(crate::failpoint::sites::QUEUE_PUSH)
            == crate::failpoint::FaultAction::SpuriousFull
        {
            if chull_obs::armed() {
                metrics().full.incr();
            }
            return Err(PushError::Full(value));
        }
        let mut g = self.inner.lock().unwrap();
        if g.closed {
            return Err(PushError::Closed(value));
        }
        if g.items.len() >= self.capacity {
            drop(g);
            if chull_obs::armed() {
                metrics().full.incr();
            }
            return Err(PushError::Full(value));
        }
        g.items.push_back(value);
        drop(g);
        self.not_empty.notify_one();
        if chull_obs::armed() {
            metrics().push.incr();
        }
        Ok(())
    }

    /// Enqueue, blocking while the queue is full. Fails only if the queue
    /// is (or becomes) closed.
    pub fn push(&self, value: T) -> Result<(), PushError<T>> {
        let mut g = self.inner.lock().unwrap();
        loop {
            if g.closed {
                return Err(PushError::Closed(value));
            }
            if g.items.len() < self.capacity {
                g.items.push_back(value);
                drop(g);
                self.not_empty.notify_one();
                if chull_obs::armed() {
                    metrics().push.incr();
                }
                return Ok(());
            }
            g = self.not_full.wait(g).unwrap();
        }
    }

    /// Dequeue one item, blocking until one is available; `None` once the
    /// queue is closed **and** drained.
    pub fn pop(&self) -> Option<T> {
        let mut g = self.inner.lock().unwrap();
        loop {
            if let Some(v) = g.items.pop_front() {
                drop(g);
                self.not_full.notify_one();
                return Some(v);
            }
            if g.closed {
                return None;
            }
            g = self.not_empty.wait(g).unwrap();
        }
    }

    /// Block until at least one item is available (or the queue is closed
    /// and drained), then move up to `max` items into `out` in FIFO order.
    /// Returns the number of items moved; `0` means closed-and-drained.
    ///
    /// This is the consumer half of ingest coalescing: one blocking wait
    /// yields the whole backlog (bounded by `max`) under a single lock.
    pub fn pop_batch(&self, max: usize, out: &mut Vec<T>) -> usize {
        let max = max.max(1);
        let mut g = self.inner.lock().unwrap();
        loop {
            if !g.items.is_empty() {
                let take = g.items.len().min(max);
                out.extend(g.items.drain(..take));
                drop(g);
                // Batch drain may free many slots; wake all producers.
                self.not_full.notify_all();
                if chull_obs::armed() {
                    metrics().batch_items.record(take as u64);
                }
                return take;
            }
            if g.closed {
                return 0;
            }
            g = self.not_empty.wait(g).unwrap();
        }
    }

    /// Like [`BoundedQueue::pop_batch`] but never blocks: an empty queue
    /// returns `0` immediately (whether open or closed). The consumer's
    /// continuation primitive — after processing one batch it can keep
    /// draining a deep backlog without touching the condvar wait path.
    pub fn try_pop_batch(&self, max: usize, out: &mut Vec<T>) -> usize {
        let max = max.max(1);
        let mut g = self.inner.lock().unwrap();
        if g.items.is_empty() {
            return 0;
        }
        let take = g.items.len().min(max);
        out.extend(g.items.drain(..take));
        drop(g);
        self.not_full.notify_all();
        if chull_obs::armed() {
            metrics().batch_items.record(take as u64);
        }
        take
    }

    /// Like [`BoundedQueue::pop_batch`] but gives up after `timeout` if
    /// nothing arrives, returning `0` with the queue still open.
    pub fn pop_batch_timeout(&self, max: usize, out: &mut Vec<T>, timeout: Duration) -> usize {
        let max = max.max(1);
        let mut g = self.inner.lock().unwrap();
        loop {
            if !g.items.is_empty() {
                let take = g.items.len().min(max);
                out.extend(g.items.drain(..take));
                drop(g);
                self.not_full.notify_all();
                if chull_obs::armed() {
                    metrics().batch_items.record(take as u64);
                }
                return take;
            }
            if g.closed {
                return 0;
            }
            let (guard, res) = self.not_empty.wait_timeout(g, timeout).unwrap();
            g = guard;
            if res.timed_out() && g.items.is_empty() {
                return 0;
            }
        }
    }

    /// Close the queue: all blocked and future pushes fail, poppers drain
    /// the remainder and then observe closed-and-empty.
    pub fn close(&self) {
        let mut g = self.inner.lock().unwrap();
        g.closed = true;
        drop(g);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_and_capacity() {
        let q = BoundedQueue::new(2);
        assert_eq!(q.capacity(), 2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(PushError::Full(3)));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        q.try_push(3).unwrap();
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert!(q.is_empty());
    }

    #[test]
    fn pop_batch_drains_up_to_max() {
        let q = BoundedQueue::new(8);
        for i in 0..5 {
            q.try_push(i).unwrap();
        }
        let mut out = Vec::new();
        assert_eq!(q.pop_batch(3, &mut out), 3);
        assert_eq!(out, vec![0, 1, 2]);
        assert_eq!(q.pop_batch(10, &mut out), 2);
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn close_wakes_and_drains() {
        let q = Arc::new(BoundedQueue::new(4));
        q.try_push(7).unwrap();
        let qc = Arc::clone(&q);
        let h = std::thread::spawn(move || {
            let mut got = Vec::new();
            loop {
                let mut out = Vec::new();
                if qc.pop_batch(16, &mut out) == 0 {
                    break;
                }
                got.extend(out);
            }
            got
        });
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(q.try_push(9), Err(PushError::Closed(9)));
        let got = h.join().unwrap();
        assert_eq!(got, vec![7]);
    }

    #[test]
    fn blocking_push_waits_for_space() {
        let q = Arc::new(BoundedQueue::new(1));
        q.push(1).unwrap();
        let qc = Arc::clone(&q);
        let h = std::thread::spawn(move || qc.push(2));
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(q.pop(), Some(1));
        h.join().unwrap().unwrap();
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn try_pop_batch_never_blocks() {
        let q = BoundedQueue::new(8);
        let mut out = Vec::new();
        assert_eq!(q.try_pop_batch(4, &mut out), 0, "empty and open");
        for i in 0..6 {
            q.try_push(i).unwrap();
        }
        assert_eq!(q.try_pop_batch(4, &mut out), 4);
        assert_eq!(out, vec![0, 1, 2, 3]);
        assert_eq!(q.try_pop_batch(4, &mut out), 2);
        q.close();
        assert_eq!(q.try_pop_batch(4, &mut out), 0, "empty and closed");
        assert_eq!(out, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn pop_batch_timeout_returns_zero_when_idle() {
        let q: BoundedQueue<u32> = BoundedQueue::new(4);
        let mut out = Vec::new();
        let n = q.pop_batch_timeout(4, &mut out, Duration::from_millis(10));
        assert_eq!(n, 0);
        assert!(!q.is_closed());
    }
}
