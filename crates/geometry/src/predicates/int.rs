//! Exact geometric predicates over integer coordinates.
//!
//! All predicates are exact for coordinates within
//! [`MAX_COORD`](crate::point::MAX_COORD): the 2D/3D fast paths use `i128`
//! arithmetic whose intermediates provably fit, and everything else routes
//! through the overflow-checked fraction-free determinants of
//! [`crate::exact::det`] (which fall back to arbitrary precision).
//!
//! Sign conventions follow the homogeneous determinant
//! `det [[p_0, 1], [p_1, 1], ..., [p_d, 1]]` (one row per point):
//! in 2D, `orient2d(a, b, c) == Positive` iff `a, b, c` are counterclockwise.

use crate::exact::det::{det_sign_i128, det_sign_i64};
use crate::exact::Sign;
use crate::point::{Point2i, Point3i, MAX_COORD};

/// Coordinate magnitude below which the 3D fast path cannot overflow
/// (three 41-bit factors plus summation slack stay within `i128`).
const ORIENT3D_FAST_LIMIT: i64 = 1 << 40;

#[inline]
fn sign_i128(v: i128) -> Sign {
    if v > 0 {
        Sign::Positive
    } else if v < 0 {
        Sign::Negative
    } else {
        Sign::Zero
    }
}

/// Orientation of the 2D triangle `(a, b, c)`:
/// `Positive` = counterclockwise, `Negative` = clockwise, `Zero` = collinear.
///
/// ```
/// use chull_geometry::{predicates::orient2d, Point2i, Sign};
/// let (a, b) = (Point2i::new(0, 0), Point2i::new(10, 0));
/// assert_eq!(orient2d(a, b, Point2i::new(5, 3)), Sign::Positive);
/// assert_eq!(orient2d(a, b, Point2i::new(5, -3)), Sign::Negative);
/// assert_eq!(orient2d(a, b, Point2i::new(20, 0)), Sign::Zero);
/// ```
#[inline]
pub fn orient2d(a: Point2i, b: Point2i, c: Point2i) -> Sign {
    debug_assert!(
        a.x.abs() <= MAX_COORD && a.y.abs() <= MAX_COORD,
        "coordinate exceeds MAX_COORD"
    );
    let abx = b.x as i128 - a.x as i128;
    let aby = b.y as i128 - a.y as i128;
    let acx = c.x as i128 - a.x as i128;
    let acy = c.y as i128 - a.y as i128;
    sign_i128(abx * acy - aby * acx)
}

/// Orientation of the 3D tetrahedron `(a, b, c, d)`:
/// `Positive` iff `d` is on the positive side of the oriented plane
/// through `a, b, c` (the side a right-handed `abc` normal points away from
/// is `Negative`; concretely this is the sign of the homogeneous 4x4
/// determinant with rows `a, b, c, d`).
pub fn orient3d(a: Point3i, b: Point3i, c: Point3i, d: Point3i) -> Sign {
    let fast_ok = [a, b, c, d].iter().all(|p| {
        p.x.abs() < ORIENT3D_FAST_LIMIT
            && p.y.abs() < ORIENT3D_FAST_LIMIT
            && p.z.abs() < ORIENT3D_FAST_LIMIT
    });
    if fast_ok {
        let adx = (a.x - d.x) as i128;
        let ady = (a.y - d.y) as i128;
        let adz = (a.z - d.z) as i128;
        let bdx = (b.x - d.x) as i128;
        let bdy = (b.y - d.y) as i128;
        let bdz = (b.z - d.z) as i128;
        let cdx = (c.x - d.x) as i128;
        let cdy = (c.y - d.y) as i128;
        let cdz = (c.z - d.z) as i128;
        let det = adx * (bdy * cdz - bdz * cdy) - ady * (bdx * cdz - bdz * cdx)
            + adz * (bdx * cdy - bdy * cdx);
        // det above is det [[a-d],[b-d],[c-d]] which equals the homogeneous
        // det with rows a,b,c,d.
        return sign_i128(det);
    }
    let rows: Vec<Vec<i64>> = [a, b, c, d]
        .iter()
        .map(|p| vec![p.x, p.y, p.z, 1])
        .collect();
    det_sign_i64(&rows)
}

/// Orientation of `d + 1` points in `d` dimensions: the sign of the
/// homogeneous `(d+1) x (d+1)` determinant with one row per point.
///
/// `points` must contain exactly `dim + 1` slices of length `dim`.
pub fn orientd(dim: usize, points: &[&[i64]]) -> Sign {
    assert_eq!(points.len(), dim + 1, "orientd needs dim + 1 points");
    match dim {
        2 => orient2d(
            Point2i::new(points[0][0], points[0][1]),
            Point2i::new(points[1][0], points[1][1]),
            Point2i::new(points[2][0], points[2][1]),
        ),
        3 => orient3d(
            Point3i::new(points[0][0], points[0][1], points[0][2]),
            Point3i::new(points[1][0], points[1][1], points[1][2]),
            Point3i::new(points[2][0], points[2][1], points[2][2]),
            Point3i::new(points[3][0], points[3][1], points[3][2]),
        ),
        _ => {
            let rows: Vec<Vec<i64>> = points
                .iter()
                .map(|p| {
                    assert_eq!(p.len(), dim, "point of wrong dimension");
                    let mut row = p.to_vec();
                    row.push(1);
                    row
                })
                .collect();
            det_sign_i64(&rows)
        }
    }
}

/// Orientation with explicit homogeneous coordinates: the sign of the
/// `(d+1) x (d+1)` determinant whose row `i` is `(rows[i].0, rows[i].1)` —
/// point coordinates followed by the homogeneous weight.
///
/// Used to test against non-lattice reference points exactly: the interior
/// centroid of a simplex `v_0..v_d` is `(sum v_i) / (d+1)`, representable as
/// the homogeneous row `(sum v_i, d+1)`.
pub fn orientd_hom(dim: usize, rows: &[(&[i64], i64)]) -> Sign {
    assert_eq!(rows.len(), dim + 1, "orientd_hom needs dim + 1 rows");
    let m: Vec<Vec<i64>> = rows
        .iter()
        .map(|(p, w)| {
            assert_eq!(p.len(), dim, "point of wrong dimension");
            let mut row = p.to_vec();
            row.push(*w);
            row
        })
        .collect();
    det_sign_i64(&m)
}

/// Incircle test: `Positive` iff `d` lies strictly inside the circle through
/// `a, b, c`, **assuming `(a, b, c)` is counterclockwise**. For a clockwise
/// triangle the sign is flipped.
pub fn incircle(a: Point2i, b: Point2i, c: Point2i, d: Point2i) -> Sign {
    let lift = |p: Point2i| -> Vec<i128> {
        let x = p.x as i128;
        let y = p.y as i128;
        vec![x, y, x * x + y * y, 1]
    };
    let rows = vec![lift(a), lift(b), lift(c), lift(d)];
    // Homogeneous lifted determinant is positive iff d is inside (ccw abc).
    det_sign_i128(&rows)
}

/// Insphere test: `Positive` iff `e` lies strictly inside the sphere through
/// `a, b, c, d`, assuming `orient3d(a, b, c, d) == Positive`; flipped sign
/// for the opposite orientation.
pub fn insphere(a: Point3i, b: Point3i, c: Point3i, d: Point3i, e: Point3i) -> Sign {
    let lift = |p: Point3i| -> Vec<i128> {
        let x = p.x as i128;
        let y = p.y as i128;
        let z = p.z as i128;
        vec![x, y, z, x * x + y * y + z * z, 1]
    };
    let rows = vec![lift(a), lift(b), lift(c), lift(d), lift(e)];
    // The homogeneous lifted determinant is positive iff `e` is inside for a
    // positively-oriented tetrahedron (row-reduce against row `e` to recover
    // the classical translated 4x4 form with cofactor sign +1).
    det_sign_i128(&rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p2(x: i64, y: i64) -> Point2i {
        Point2i::new(x, y)
    }
    fn p3(x: i64, y: i64, z: i64) -> Point3i {
        Point3i::new(x, y, z)
    }

    #[test]
    fn orient2d_basic() {
        assert_eq!(orient2d(p2(0, 0), p2(1, 0), p2(0, 1)), Sign::Positive);
        assert_eq!(orient2d(p2(0, 0), p2(0, 1), p2(1, 0)), Sign::Negative);
        assert_eq!(orient2d(p2(0, 0), p2(1, 1), p2(2, 2)), Sign::Zero);
    }

    #[test]
    fn orient2d_extreme_coordinates() {
        let m = MAX_COORD;
        assert_eq!(orient2d(p2(-m, -m), p2(m, -m), p2(0, m)), Sign::Positive);
        assert_eq!(orient2d(p2(-m, -m), p2(0, 0), p2(m, m)), Sign::Zero);
        // Off-by-one from collinear must be detected.
        assert_eq!(orient2d(p2(-m, -m), p2(0, 0), p2(m, m - 1)), Sign::Negative);
        assert_eq!(orient2d(p2(-m, -m), p2(0, 0), p2(m - 1, m)), Sign::Positive);
    }

    #[test]
    fn orient3d_basic() {
        // Unit tetrahedron: d above the xy-plane triangle.
        assert_eq!(
            orient3d(p3(0, 0, 0), p3(1, 0, 0), p3(0, 1, 0), p3(0, 0, 1)),
            Sign::Negative
        );
        assert_eq!(
            orient3d(p3(0, 0, 0), p3(0, 1, 0), p3(1, 0, 0), p3(0, 0, 1)),
            Sign::Positive
        );
        assert_eq!(
            orient3d(p3(0, 0, 0), p3(1, 0, 0), p3(0, 1, 0), p3(1, 1, 0)),
            Sign::Zero
        );
    }

    #[test]
    fn orient3d_fast_and_slow_paths_agree() {
        // Same geometry scaled across the fast-path limit.
        let cases = [
            (p3(0, 0, 0), p3(3, 1, 0), p3(1, 4, 0), p3(2, 2, 5)),
            (p3(1, 2, 3), p3(5, 4, 3), p3(2, 8, 6), p3(7, 7, 7)),
        ];
        let s = ORIENT3D_FAST_LIMIT * 2; // push all coords onto slow path
        for (a, b, c, d) in cases {
            let fast = orient3d(a, b, c, d);
            let shift = |p: Point3i| p3(p.x + s, p.y + s, p.z + s);
            // Translation preserves orientation; shifted points force the
            // checked/bigint path.
            let slow = orient3d(shift(a), shift(b), shift(c), shift(d));
            assert_eq!(fast, slow);
        }
    }

    #[test]
    fn orientd_matches_low_dim() {
        let a = [0i64, 0];
        let b = [1i64, 0];
        let c = [0i64, 1];
        assert_eq!(orientd(2, &[&a, &b, &c]), Sign::Positive);
        let a = [0i64, 0, 0, 0];
        let b = [1i64, 0, 0, 0];
        let c = [0i64, 1, 0, 0];
        let d = [0i64, 0, 1, 0];
        let e = [0i64, 0, 0, 1];
        let s = orientd(4, &[&a, &b, &c, &d, &e]);
        assert_ne!(s, Sign::Zero);
        // Swapping two points flips the sign.
        let s2 = orientd(4, &[&b, &a, &c, &d, &e]);
        assert_eq!(s2, s.negate());
    }

    #[test]
    fn orientd_degenerate() {
        // 4 points in a 3D plane (z = 0).
        let a = [0i64, 0, 0];
        let b = [5i64, 0, 0];
        let c = [0i64, 5, 0];
        let d = [3i64, 3, 0];
        assert_eq!(orientd(3, &[&a, &b, &c, &d]), Sign::Zero);
    }

    #[test]
    fn incircle_basic() {
        // Unit square corners ccw; center is inside the circumcircle.
        let (a, b, c) = (p2(0, 0), p2(2, 0), p2(0, 2));
        assert_eq!(orient2d(a, b, c), Sign::Positive);
        assert_eq!(incircle(a, b, c, p2(1, 1)), Sign::Positive);
        assert_eq!(incircle(a, b, c, p2(10, 10)), Sign::Negative);
        // Fourth cocircular point: (2, 2) on the circle through the others.
        assert_eq!(incircle(a, b, c, p2(2, 2)), Sign::Zero);
        // Clockwise triangle flips the sign.
        assert_eq!(incircle(a, c, b, p2(1, 1)), Sign::Negative);
    }

    #[test]
    fn insphere_basic() {
        let (a, b, c, d) = (p3(0, 0, 0), p3(2, 0, 0), p3(0, 2, 0), p3(0, 0, 2));
        let orient = orient3d(a, b, c, d);
        assert_ne!(orient, Sign::Zero);
        let inside = insphere(a, b, c, d, p3(1, 1, 1));
        let outside = insphere(a, b, c, d, p3(10, 10, 10));
        // Regardless of base orientation, inside/outside must disagree.
        assert_eq!(inside, outside.negate());
        // Co-spherical point: (2,2,0) lies on the circumsphere (it is a
        // vertex of the cube whose diagonal sphere passes through all).
        assert_eq!(insphere(a, b, c, d, p3(2, 2, 0)), Sign::Zero);
        // Orientation-normalized check: inside point reports Positive for a
        // positively-oriented tetrahedron.
        let (a2, b2, c2, d2) = if orient == Sign::Positive {
            (a, b, c, d)
        } else {
            (b, a, c, d)
        };
        assert_eq!(insphere(a2, b2, c2, d2, p3(1, 1, 1)), Sign::Positive);
    }

    #[test]
    fn incircle_large_coordinates() {
        // Lifted entries overflow naive i64; verify the i128/bigint path.
        let s = 1 << 60;
        let (a, b, c) = (p2(0, 0), p2(s, 0), p2(0, s));
        assert_eq!(incircle(a, b, c, p2(s / 2, s / 2)), Sign::Positive);
        assert_eq!(incircle(a, b, c, p2(s, s)), Sign::Zero);
        assert_eq!(incircle(a, b, c, p2(s, s + 1)), Sign::Negative);
    }
}
