//! A minimal scoped task pool for the asynchronous hull (Algorithm 3).
//!
//! `ProcessRidge` is naturally expressed as dynamically spawned tasks:
//! each ridge task may spawn up to `d` successor tasks as new facets are
//! created. This module provides exactly that shape — a [`scope`] whose
//! [`Scope::spawn`] enqueues closures onto a shared deque drained by a
//! fixed set of worker threads — with no work-stealing machinery: the
//! queue is a single mutex-protected deque, which measures within noise
//! of a stealing scheduler for this workload (tasks do real predicate
//! work; queue traffic is not the bottleneck).
//!
//! The scope guarantees all spawned tasks finish before `scope` returns,
//! so tasks may borrow from the enclosing stack frame (`'env`), exactly
//! like `std::thread::scope`. Panics in tasks are propagated: the count
//! of in-flight tasks is decremented by a drop guard so workers shut
//! down cleanly, and the worker's panic resurfaces on join.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

type Task<'env> = Box<dyn FnOnce(&Scope<'env>) + Send + 'env>;

/// Shared state of one task scope; hand out `&Scope` to spawn.
pub struct Scope<'env> {
    queue: Mutex<VecDeque<Task<'env>>>,
    /// Tasks spawned but not yet finished (queued or running).
    pending: AtomicUsize,
    cv: Condvar,
}

/// Decrements `pending` even if the task panics, waking sleepers so the
/// scope can unwind instead of deadlocking.
struct PendingGuard<'a, 'env>(&'a Scope<'env>);

impl Drop for PendingGuard<'_, '_> {
    fn drop(&mut self) {
        if self.0.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _lock = self.0.queue.lock().unwrap();
            self.0.cv.notify_all();
        }
    }
}

impl<'env> Scope<'env> {
    fn new() -> Scope<'env> {
        Scope {
            queue: Mutex::new(VecDeque::new()),
            pending: AtomicUsize::new(0),
            cv: Condvar::new(),
        }
    }

    /// Enqueue a task; it runs on some worker before the scope ends.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'env>) + Send + 'env,
    {
        self.pending.fetch_add(1, Ordering::AcqRel);
        let mut q = self.queue.lock().unwrap();
        q.push_back(Box::new(f));
        drop(q);
        self.cv.notify_one();
    }

    /// Worker loop: run tasks until no task is queued *and* none is in
    /// flight anywhere (an in-flight task may still spawn more).
    fn run_worker(&self) {
        loop {
            let task = {
                let mut q = self.queue.lock().unwrap();
                loop {
                    if let Some(t) = q.pop_front() {
                        break Some(t);
                    }
                    if self.pending.load(Ordering::Acquire) == 0 {
                        break None;
                    }
                    q = self.cv.wait(q).unwrap();
                }
            };
            match task {
                Some(t) => {
                    let _guard = PendingGuard(self);
                    t(self);
                }
                None => return,
            }
        }
    }
}

/// Default worker count: the machine's available parallelism.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Run `f` with a [`Scope`] drained by [`default_threads`] workers.
pub fn scope<'env, F, R>(f: F) -> R
where
    F: FnOnce(&Scope<'env>) -> R,
    R: Send,
{
    scope_with_threads(default_threads(), f)
}

/// Run `f` with a [`Scope`] drained by `threads` workers (the calling
/// thread participates, so `threads == 1` runs everything inline).
pub fn scope_with_threads<'env, F, R>(threads: usize, f: F) -> R
where
    F: FnOnce(&Scope<'env>) -> R,
    R: Send,
{
    let threads = threads.max(1);
    let pool_scope = Scope::new();
    std::thread::scope(|s| {
        for _ in 1..threads {
            s.spawn(|| pool_scope.run_worker());
        }
        let r = f(&pool_scope);
        pool_scope.run_worker();
        r
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn runs_all_tasks_including_nested_spawns() {
        let counter = AtomicU64::new(0);
        scope_with_threads(4, |s| {
            for _ in 0..100 {
                s.spawn(|s| {
                    counter.fetch_add(1, Ordering::Relaxed);
                    for _ in 0..3 {
                        s.spawn(|_| {
                            counter.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 400);
    }

    #[test]
    fn single_thread_is_inline_and_complete() {
        let counter = AtomicU64::new(0);
        scope_with_threads(1, |s| {
            s.spawn(|s| {
                counter.fetch_add(1, Ordering::Relaxed);
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            });
        });
        assert_eq!(counter.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn deep_recursion_terminates() {
        fn recurse<'env>(s: &Scope<'env>, depth: u32, hits: &'env AtomicU64) {
            hits.fetch_add(1, Ordering::Relaxed);
            if depth > 0 {
                s.spawn(move |s| recurse(s, depth - 1, hits));
                s.spawn(move |s| recurse(s, depth - 1, hits));
            }
        }
        let hits = AtomicU64::new(0);
        scope_with_threads(8, |s| {
            s.spawn(|s| recurse(s, 10, &hits));
        });
        assert_eq!(hits.load(Ordering::Relaxed), 2u64.pow(11) - 1);
    }

    #[test]
    fn scope_returns_closure_value() {
        let v = scope_with_threads(2, |_| 42);
        assert_eq!(v, 42);
    }

    #[test]
    #[should_panic(expected = "task panic propagates")]
    fn panics_propagate() {
        scope_with_threads(2, |s| {
            s.spawn(|_| panic!("task panic propagates"));
        });
    }
}
