//! Property tests for the Section 7 applications.

use chull_apps::circles::{incremental_intersection, random_circles, verify_intersection, Circle};
use chull_apps::delaunay::{delaunay, verify_delaunay, Engine};
use chull_apps::halfspace::{
    excludes, intersection_via_duality, random_halfplanes, vertex_coords, HalfplaneSpace, Vertex,
};
use chull_geometry::Point2i;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Delaunay via lifting always satisfies the empty-circumcircle
    /// property (certified by the exact incircle predicate), on arbitrary
    /// distinct non-collinear point sets.
    #[test]
    fn prop_delaunay_empty_circumcircle(
        raw in prop::collection::vec((-5_000i64..5_000, -5_000i64..5_000), 6..40),
        seed in 0u64..100,
    ) {
        let mut pts: Vec<Point2i> = raw.into_iter().map(|(x, y)| Point2i::new(x, y)).collect();
        pts.sort_unstable();
        pts.dedup();
        prop_assume!(pts.len() >= 5);
        // Need a non-degenerate lifted hull: at least 3 non-collinear points.
        let rows: Vec<Vec<i64>> = pts.iter().map(|p| vec![p.x, p.y]).collect();
        let refs: Vec<&[i64]> = rows.iter().map(|r| r.as_slice()).collect();
        prop_assume!(chull_geometry::exact::affine_rank(&refs) == 3);
        let del = delaunay(&pts, Engine::Sequential, seed);
        prop_assert!(verify_delaunay(&pts, &del).is_ok());
        // Both engines agree.
        let par = delaunay(&pts, Engine::Parallel, seed);
        prop_assert_eq!(del, par);
    }

    /// Every vertex reported by the half-plane intersection satisfies every
    /// half-plane (weakly), and the direct/dual computations agree.
    #[test]
    fn prop_halfplane_vertices_feasible(n in 8usize..48, seed in 0u64..100) {
        let hs = random_halfplanes(n, seed);
        let space = HalfplaneSpace::new(hs.clone());
        let objs: Vec<usize> = (0..n).collect();
        let direct = space.polygon_vertices(&objs);
        for v in &direct {
            let coords = vertex_coords(&hs, *v).unwrap();
            for (k, h) in hs.iter().enumerate() {
                if k == v.i || k == v.j {
                    continue;
                }
                prop_assert!(!excludes(*h, coords), "vertex {v:?} violates half-plane {k}");
            }
        }
        let mut direct_sorted: Vec<Vertex> = direct.clone();
        direct_sorted.sort_unstable_by_key(|v| (v.i, v.j));
        let mut dual: Vec<Vertex> =
            intersection_via_duality(&hs).into_iter().map(|(v, _)| v).collect();
        dual.sort_unstable_by_key(|v| (v.i, v.j));
        prop_assert_eq!(direct_sorted, dual);
    }

    /// The circle-intersection boundary always verifies, and the number of
    /// final arcs never exceeds the circle count (each unit circle
    /// contributes at most one arc to the intersection of equal-radius
    /// disks).
    #[test]
    fn prop_circle_intersection_valid(n in 3usize..64, seed in 0u64..100) {
        let circles = random_circles(n, 0.45, seed);
        let r = incremental_intersection(&circles);
        prop_assert!(verify_intersection(&r).is_ok());
        prop_assert!(r.arcs.len() <= n, "{} arcs from {n} circles", r.arcs.len());
        prop_assert!(!r.arcs.is_empty());
    }
}

#[test]
fn delaunay_on_grid_subset() {
    // A (slightly pruned) grid has many cocircular 4-tuples; the lifting
    // hull still produces *a* triangulation whose circumcircles are
    // empty-or-boundary. verify_delaunay only rejects *strict* violations,
    // so this exercises the degenerate-tolerant path.
    let mut pts: Vec<Point2i> = Vec::new();
    for x in 0..6 {
        for y in 0..6 {
            if (x + y) % 7 != 3 {
                pts.push(Point2i::new(x * 10, y * 10));
            }
        }
    }
    let del = delaunay(&pts, Engine::Sequential, 3);
    verify_delaunay(&pts, &del).unwrap();
    assert!(!del.triangles.is_empty());
}

#[test]
fn two_identical_direction_halfplanes_tolerated_by_duality() {
    // Parallel but distinct normals: the duller one is redundant.
    let mut hs = random_halfplanes(16, 9);
    // Double one normal scaled: same direction, same c -> dominated dual
    // point colinear with the original; hull drops the interior one.
    let h = hs[5];
    hs.push(chull_apps::halfspace::Halfplane { a: h.a / 2, b: h.b / 2, c: h.c });
    let verts = intersection_via_duality(&hs);
    // The weaker copy never defines a vertex.
    assert!(verts.iter().all(|(v, _)| v.i != hs.len() - 1 && v.j != hs.len() - 1));
}

#[test]
fn circle_depth_monotone_workload() {
    // Insert circles whose centers walk outward: later circles always cut,
    // maximizing chains — depth stays modest anyway.
    let mut circles = vec![Circle { x: 0.0, y: 0.001 }, Circle { x: 0.001, y: 0.0 }];
    for i in 0..200 {
        let ang = i as f64 * 0.37;
        let rad = 0.05 + 0.4 * (i as f64 / 200.0);
        circles.push(Circle { x: rad * ang.cos(), y: rad * ang.sin() });
    }
    let r = incremental_intersection(&circles);
    verify_intersection(&r).unwrap();
    assert!(r.max_depth < 202);
}
