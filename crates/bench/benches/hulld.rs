//! Higher-dimensional hull benchmarks (d = 4, 5): the regime where the
//! `O(n^{floor(d/2)})` term dominates the work bound.

use chull_bench::prepared_ball_d;
use chull_core::par::{parallel_hull, ParOptions};
use chull_core::seq::incremental_hull_run;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_hulld(c: &mut Criterion) {
    let mut group = c.benchmark_group("hulld");
    for (dim, n) in [(4usize, 1000usize), (5, 400)] {
        let pts = prepared_ball_d(dim, n, 13);
        group.bench_with_input(
            BenchmarkId::new(format!("d{dim}_seq"), n),
            &pts,
            |b, pts| b.iter(|| incremental_hull_run(pts)),
        );
        group.bench_with_input(
            BenchmarkId::new(format!("d{dim}_par"), n),
            &pts,
            |b, pts| b.iter(|| parallel_hull(pts, ParOptions::default())),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_hulld
}
criterion_main!(benches);
