//! 2D hull benchmarks: Algorithm 2 vs Algorithm 3 vs the divide-and-conquer
//! baselines, on the easy (disk) and adversarial (convex-position) regimes.

use chull_bench::{prepared_disk_2d, prepared_parabola_2d};
use chull_core::baseline::{monotone_chain, quickhull2d};
use chull_core::par::{parallel_hull, ParOptions};
use chull_core::seq::incremental_hull_run;
use chull_geometry::Point2i;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_hull2d(c: &mut Criterion) {
    let mut group = c.benchmark_group("hull2d_disk");
    for &n in &[10_000usize, 100_000] {
        let pts = prepared_disk_2d(n, 5);
        let raw: Vec<Point2i> =
            (0..pts.len()).map(|i| Point2i::new(pts.point(i)[0], pts.point(i)[1])).collect();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("monotone_chain", n), &raw, |b, raw| {
            b.iter(|| monotone_chain::hull_indices(raw));
        });
        group.bench_with_input(BenchmarkId::new("quickhull", n), &raw, |b, raw| {
            b.iter(|| quickhull2d::hull_indices(raw));
        });
        group.bench_with_input(BenchmarkId::new("incremental_seq", n), &pts, |b, pts| {
            b.iter(|| incremental_hull_run(pts));
        });
        group.bench_with_input(BenchmarkId::new("incremental_par", n), &pts, |b, pts| {
            b.iter(|| parallel_hull(pts, ParOptions::default()));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("hull2d_convex_position");
    for &n in &[10_000usize] {
        let pts = prepared_parabola_2d(n, 6);
        let raw: Vec<Point2i> =
            (0..pts.len()).map(|i| Point2i::new(pts.point(i)[0], pts.point(i)[1])).collect();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("monotone_chain", n), &raw, |b, raw| {
            b.iter(|| monotone_chain::hull_indices(raw));
        });
        group.bench_with_input(BenchmarkId::new("incremental_seq", n), &pts, |b, pts| {
            b.iter(|| incremental_hull_run(pts));
        });
        group.bench_with_input(BenchmarkId::new("incremental_par", n), &pts, |b, pts| {
            b.iter(|| parallel_hull(pts, ParOptions::default()));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_hull2d
}
criterion_main!(benches);
