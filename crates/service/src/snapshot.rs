//! Epoch-versioned, immutable hull snapshots — the service's read side.
//!
//! Each shard worker owns a mutable [`OnlineHull`]; after applying a batch
//! it publishes a frozen copy behind an `Arc`. Readers grab the `Arc`
//! under a short lock and then query **without any synchronization**:
//! every query on [`HullSnapshot`] takes `&self` and descends the frozen
//! history (influence) graph, so the paper's expected `O(log n)` point
//! location (Section 4) carries over verbatim to the serving path — a
//! snapshot is exactly the history graph of some prefix of the insertion
//! sequence, and the support property `C(t) ⊆ C(t1) ∪ C(t2)` guarantees
//! the descent finds every visible facet of that prefix.
//!
//! A shard that has not yet seen `d + 1` affinely independent points is
//! **bootstrapping**: it buffers arrivals and answers geometric queries
//! with "not ready" (the hull is still degenerate).

use chull_core::online::OnlineHull;
use chull_core::HullOutput;
use chull_geometry::KernelCounts;

/// Frozen state behind one snapshot.
#[derive(Clone)]
pub(crate) enum SnapState {
    /// Fewer than `d + 1` affinely independent points so far; the buffered
    /// arrivals in order.
    Boot(Vec<Vec<i64>>),
    /// A live hull (frozen copy of the shard's online hull).
    Live(Box<OnlineHull>),
}

/// An immutable, epoch-stamped view of one shard; see module docs.
#[derive(Clone)]
pub struct HullSnapshot {
    /// Publication epoch: the number of ingest batches applied before this
    /// snapshot was taken. Strictly increasing per shard.
    pub epoch: u64,
    /// Points accepted so far (buffered + inserted, including seeds).
    pub applied: u64,
    /// Dimension.
    pub dim: usize,
    pub(crate) state: SnapState,
}

impl HullSnapshot {
    /// The empty snapshot a shard publishes before any point arrives.
    pub fn empty(dim: usize) -> HullSnapshot {
        HullSnapshot {
            epoch: 0,
            applied: 0,
            dim,
            state: SnapState::Boot(Vec::new()),
        }
    }

    /// False while the shard is still assembling its seed simplex.
    pub fn ready(&self) -> bool {
        matches!(self.state, SnapState::Live(_))
    }

    /// Membership test; `None` while bootstrapping. Kernel counters go to
    /// the caller's accumulator (folded into shard atomics by the server).
    pub fn contains(&self, point: &[i64], counts: &mut KernelCounts) -> Option<bool> {
        match &self.state {
            SnapState::Boot(_) => None,
            SnapState::Live(h) => Some(h.contains_counted(point, counts)),
        }
    }

    /// Number of hull facets visible from `point` (0 = inside or on);
    /// `None` while bootstrapping.
    pub fn visible_count(&self, point: &[i64], counts: &mut KernelCounts) -> Option<u32> {
        match &self.state {
            SnapState::Boot(_) => None,
            SnapState::Live(h) => Some(h.visible_facets(point, counts).len() as u32),
        }
    }

    /// The hull vertex extreme in `direction`; `None` while bootstrapping.
    pub fn extreme(&self, direction: &[i64]) -> Option<(u32, Vec<i64>)> {
        match &self.state {
            SnapState::Boot(_) => None,
            SnapState::Live(h) => Some(h.extreme(direction)),
        }
    }

    /// The current hull facets (empty while bootstrapping).
    pub fn output(&self) -> HullOutput {
        match &self.state {
            SnapState::Boot(_) => HullOutput {
                dim: self.dim,
                facets: Vec::new(),
            },
            SnapState::Live(h) => h.output(),
        }
    }

    /// All points this snapshot holds, flattened `dim` per point, in
    /// arrival order (for `Live`, seed-simplex points come first — the
    /// order the hull assigned vertex ids in).
    pub fn flat_points(&self) -> Vec<i64> {
        match &self.state {
            SnapState::Boot(pts) => pts.iter().flatten().copied().collect(),
            SnapState::Live(h) => h.points().flat().to_vec(),
        }
    }

    /// Number of points held.
    pub fn num_points(&self) -> usize {
        match &self.state {
            SnapState::Boot(pts) => pts.len(),
            SnapState::Live(h) => h.num_points(),
        }
    }

    /// Number of facets on the current hull (0 while bootstrapping).
    pub fn num_facets(&self) -> usize {
        match &self.state {
            SnapState::Boot(_) => 0,
            SnapState::Live(h) => h.output().num_facets(),
        }
    }

    /// Ingest-path staged-kernel counters accumulated by the hull this
    /// snapshot was taken from (zero while bootstrapping).
    pub fn ingest_kernel(&self) -> KernelCounts {
        match &self.state {
            SnapState::Boot(_) => KernelCounts::default(),
            SnapState::Live(h) => h.kernel,
        }
    }

    /// Dependence depth of the hull behind this snapshot — the deepest
    /// chain in its history graph, the observable Theorem 4.2 bounds by
    /// `σ·H_n` whp (0 while bootstrapping).
    pub fn dep_depth(&self) -> u64 {
        match &self.state {
            SnapState::Boot(_) => 0,
            SnapState::Live(h) => h.dep_depth(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boot_snapshot_answers_not_ready() {
        let s = HullSnapshot::empty(2);
        assert!(!s.ready());
        let mut k = KernelCounts::default();
        assert_eq!(s.contains(&[0, 0], &mut k), None);
        assert_eq!(s.visible_count(&[0, 0], &mut k), None);
        assert_eq!(s.extreme(&[1, 0]), None);
        assert_eq!(s.num_points(), 0);
        assert_eq!(s.num_facets(), 0);
        assert!(s.output().facets.is_empty());
    }

    #[test]
    fn live_snapshot_queries_shared() {
        let mut h = OnlineHull::new(2, &[vec![0, 0], vec![10, 0], vec![0, 10]]);
        h.insert(&[10, 10]);
        let s = HullSnapshot {
            epoch: 1,
            applied: 4,
            dim: 2,
            state: SnapState::Live(Box::new(h)),
        };
        assert!(s.ready());
        let mut k = KernelCounts::default();
        assert_eq!(s.contains(&[5, 5], &mut k), Some(true));
        assert_eq!(s.contains(&[50, 50], &mut k), Some(false));
        assert!(s.visible_count(&[50, 50], &mut k).unwrap() > 0);
        assert_eq!(s.extreme(&[1, 1]).unwrap().1, vec![10, 10]);
        assert_eq!(s.num_facets(), 4);
        assert!(k.tests > 0);
    }
}
