//! A blocking client for the hull wire protocol — used by the `hull
//! query` CLI, the loopback tests, the chaos harness, and the load
//! generator.
//!
//! Hardening (matching the server's failure model):
//!
//! * [`HullClient::insert_retry`] absorbs `Overloaded` backpressure with
//!   **capped exponential backoff plus seeded jitter** under an overall
//!   deadline ([`RetryPolicy`]) — replayable from a single seed, and the
//!   jitter decorrelates a fleet of load-generator threads;
//! * a broken connection (server restart, failpoint-truncated frame)
//!   triggers one **reconnect-and-resume** per request: the client
//!   remembers the resolved address and transparently redials. A resend
//!   after a lost *response* can duplicate an insert; the hull is
//!   insensitive to duplicate coordinates, so the chaos harness asserts
//!   acked-⊆-served rather than exact multiset equality;
//! * `Degraded` replies are unwrapped to their inner answer and surfaced
//!   via [`HullClient::last_degraded`]; likewise v5 `Stale` wrappers
//!   (follower replicas trailing their primary) are unwrapped and the
//!   staleness bound surfaced via [`HullClient::last_stale`];
//! * an ordered **fallback address list**
//!   ([`HullClientBuilder::fallback`]) turns reconnect-and-resume into
//!   failover: when redialing the current address fails, the client
//!   walks the fallbacks, re-negotiates the protocol on the node that
//!   accepts, and resumes there ([`HullClient::failovers`] counts the
//!   switches). Pointing the fallbacks at follower replicas keeps reads
//!   available across a primary crash.
//!
//! Connections are opened through [`HullClientBuilder`]
//! (`HullClient::builder(addr)`), which sets the connect deadline, the
//! default retry policy, and the protocol version window: by default the
//! client advertises [`PROTOCOL_V6`] in a `Hello` handshake and falls
//! back to v5/v4/v3/v2/v1 when the server doesn't understand it, so the
//! same binary talks to old and new servers.
//!
//! **Writes go through [`HullClient::mutate`]**: a [`MutationBatch`] of
//! inserts, deletes, and window expirations applied by the shard as one
//! journal unit, with `Overloaded` pushback on the rejected suffix
//! absorbed by the client's [`RetryPolicy`]. On a v6 server this is one
//! `Mutate` frame per attempt; a pure-insert batch transparently
//! downgrades to `InsertBatch` on v2–v5 servers and to per-point
//! inserts on v1, while a delete-bearing batch on a pre-v6 server fails
//! with `Unsupported`. The older entry points —
//! [`HullClient::insert`], [`HullClient::insert_batch`],
//! [`HullClient::insert_retry`] — remain as deprecated shims over the
//! same machinery. The v3 `*_scan` query methods require a v3 server
//! ([`crate::wire::CAP_SCAN_QUERIES`]); [`HullClient::pipeline`] issues
//! many tagged requests back-to-back on a v4 server
//! ([`crate::wire::CAP_PIPELINE`]) before reading any reply.

use crate::wire::{
    read_frame, write_frame, Mutation, ReplUnit, Request, Response, ALL_SHARDS, CAP_MUTATION,
    CAP_PIPELINE, CAP_REPLICATION, PROTOCOL_V1, PROTOCOL_V2, PROTOCOL_V4, PROTOCOL_V6,
};
use chull_geometry::rng::ChaCha8Rng;
use std::io::{self};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// A decoded `Snapshot` reply.
#[derive(Debug, Clone)]
pub struct SnapshotReply {
    /// Publication epoch.
    pub epoch: u64,
    /// Dimension.
    pub dim: usize,
    /// Points, one `Vec` per point, in the shard's vertex-id order.
    pub points: Vec<Vec<i64>>,
    /// Facets as vertex-id tuples into `points`.
    pub facets: Vec<Vec<u32>>,
}

/// Backoff shape for [`HullClient::insert_retry`]: delay doubles from
/// `base` up to `cap`, each sleep jittered uniformly into its upper
/// half, until `deadline` elapses overall.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// First backoff delay.
    pub base: Duration,
    /// Largest single delay.
    pub cap: Duration,
    /// Overall budget; past it the retry loop fails with `TimedOut`.
    pub deadline: Duration,
    /// Jitter seed — same seed, same jitter sequence (replayability).
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            base: Duration::from_micros(100),
            cap: Duration::from_millis(50),
            deadline: Duration::from_secs(30),
            seed: 0x07E5_7BAC_C0FF,
        }
    }
}

/// Configures and opens a [`HullClient`] connection: address, connect
/// deadline, backoff policy, and the protocol version window to
/// negotiate within. Entry point: [`HullClient::builder`].
///
/// ```no_run
/// # fn main() -> std::io::Result<()> {
/// use chull_service::HullClient;
/// let mut c = HullClient::builder("127.0.0.1:4040")
///     .deadline(std::time::Duration::from_secs(2))
///     .connect()?;
/// # Ok(()) }
/// ```
#[derive(Debug, Clone)]
pub struct HullClientBuilder {
    addr: String,
    fallbacks: Vec<String>,
    deadline: Option<Duration>,
    policy: RetryPolicy,
    floor: u16,
    ceiling: u16,
}

impl HullClientBuilder {
    /// Start a builder for `addr` (`host:port`).
    pub fn new(addr: impl Into<String>) -> HullClientBuilder {
        HullClientBuilder {
            addr: addr.into(),
            fallbacks: Vec::new(),
            deadline: None,
            policy: RetryPolicy::default(),
            floor: PROTOCOL_V1,
            ceiling: PROTOCOL_V6,
        }
    }

    /// Append an ordered fallback address: when a redial of the current
    /// address fails mid-session, the client fails over to the first
    /// fallback that accepts (re-running the `Hello` handshake there,
    /// since the fallback may be a different build). Typically the
    /// follower replicas of the primary in `addr`.
    pub fn fallback(mut self, addr: impl Into<String>) -> HullClientBuilder {
        self.fallbacks.push(addr.into());
        self
    }

    /// Bound connection establishment (default: the OS connect timeout).
    pub fn deadline(mut self, d: Duration) -> HullClientBuilder {
        self.deadline = Some(d);
        self
    }

    /// Backoff shape used by [`HullClient::insert_retry`] and
    /// [`HullClient::insert_batch`] when no explicit policy is passed.
    pub fn retry_policy(mut self, p: RetryPolicy) -> HullClientBuilder {
        self.policy = p;
        self
    }

    /// Lowest acceptable protocol version; connecting to a server that
    /// only speaks below it fails with `Unsupported`. Default
    /// [`PROTOCOL_V1`] (interoperate with anything).
    pub fn protocol_floor(mut self, v: u16) -> HullClientBuilder {
        self.floor = v;
        self
    }

    /// Highest version to advertise in the `Hello` handshake. Default
    /// [`PROTOCOL_V6`]; a ceiling of [`PROTOCOL_V1`] skips the
    /// handshake entirely, reproducing the legacy wire exchange
    /// byte-for-byte, [`PROTOCOL_V4`] reproduces the pre-replication
    /// client, and [`PROTOCOL_V5`] the pre-mutation one.
    pub fn protocol_ceiling(mut self, v: u16) -> HullClientBuilder {
        self.ceiling = v;
        self
    }

    /// Resolve, connect, and (when the ceiling allows v2) negotiate the
    /// protocol version with a `Hello` handshake. A server that answers
    /// `Hello` with an error is a v1 server — the client downgrades,
    /// unless that violates the floor.
    pub fn connect(self) -> io::Result<HullClient> {
        let addr = self.addr.to_socket_addrs()?.next().ok_or_else(|| {
            io::Error::new(io::ErrorKind::NotFound, "address resolved to nothing")
        })?;
        let stream = match self.deadline {
            Some(d) => TcpStream::connect_timeout(&addr, d)?,
            None => TcpStream::connect(addr)?,
        };
        stream.set_nodelay(true)?;
        let mut client = HullClient {
            stream,
            addr: Some(addr),
            fallbacks: self.fallbacks,
            deadline: self.deadline,
            last_degraded: None,
            last_stale: None,
            reconnects: 0,
            failovers: 0,
            calls: 0,
            policy: self.policy,
            negotiated: PROTOCOL_V1,
            ceiling: self.ceiling,
            caps: 0,
        };
        client.handshake()?;
        if client.negotiated < self.floor {
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                format!(
                    "server speaks protocol v{}, but the floor is v{}",
                    client.negotiated, self.floor
                ),
            ));
        }
        Ok(client)
    }
}

/// Outcome of [`HullClient::insert_batch`]: every point was queued.
#[derive(Debug, Clone, Copy)]
pub struct BatchInsertReply {
    /// Publication epoch observed when the (last slice of the) batch
    /// was enqueued; `0` when the server only speaks v1 (single-point
    /// inserts carry no epoch).
    pub epoch: u64,
    /// `Overloaded` rejections absorbed by backoff along the way.
    pub rejections: u64,
}

/// Builder for one mutation envelope: inserts, deletes, and window
/// expirations the shard applies as a single journal unit (one epoch).
///
/// ```
/// use chull_service::MutationBatch;
/// let batch = MutationBatch::new()
///     .insert([0, 0])
///     .insert([10, 0])
///     .delete([0, 0])
///     .expire(1);
/// assert_eq!(batch.len(), 4);
/// ```
#[derive(Debug, Clone, Default)]
pub struct MutationBatch {
    muts: Vec<Mutation>,
}

impl MutationBatch {
    /// An empty envelope.
    pub fn new() -> MutationBatch {
        MutationBatch::default()
    }

    /// Append an insert.
    pub fn insert(mut self, point: impl Into<Vec<i64>>) -> MutationBatch {
        self.muts.push(Mutation::Insert(point.into()));
        self
    }

    /// Append a delete (tombstones the oldest live copy of the point;
    /// a miss is counted server-side and ignored).
    pub fn delete(mut self, point: impl Into<Vec<i64>>) -> MutationBatch {
        self.muts.push(Mutation::Delete(point.into()));
        self
    }

    /// Append an expiration of the `n` oldest live points.
    pub fn expire(mut self, n: u32) -> MutationBatch {
        self.muts.push(Mutation::Expire(n));
        self
    }

    /// Mutations queued so far.
    pub fn len(&self) -> usize {
        self.muts.len()
    }

    /// Whether the envelope holds no mutations.
    pub fn is_empty(&self) -> bool {
        self.muts.is_empty()
    }

    /// The raw mutation list, in application order.
    pub fn into_mutations(self) -> Vec<Mutation> {
        self.muts
    }
}

impl From<Vec<Mutation>> for MutationBatch {
    fn from(muts: Vec<Mutation>) -> MutationBatch {
        MutationBatch { muts }
    }
}

/// Outcome of [`HullClient::mutate`]: every mutation was queued.
#[derive(Debug, Clone, Copy)]
pub struct MutateReply {
    /// Publication epoch observed when the (last slice of the)
    /// envelope was enqueued; `0` on a v1 connection (single-point
    /// inserts carry no epoch).
    pub epoch: u64,
    /// `Overloaded` rejections absorbed by backoff along the way.
    pub rejections: u64,
}

/// One connection to a hull server; methods are synchronous
/// request/response calls. Not thread-safe — use one client per thread
/// (connections are cheap).
pub struct HullClient {
    stream: TcpStream,
    /// Resolved peer address, kept for reconnect-and-resume; replaced
    /// when a redial fails over to a fallback.
    addr: Option<SocketAddr>,
    /// Ordered failover targets tried after the current address refuses
    /// a redial (resolved lazily, at failover time).
    fallbacks: Vec<String>,
    /// Connect deadline, reused for redials.
    deadline: Option<Duration>,
    /// Generation from the most recent reply iff it was `Degraded`.
    last_degraded: Option<u32>,
    /// Staleness bound (batch units behind the primary) from the most
    /// recent reply iff it was `Stale` — a follower replica answered.
    last_stale: Option<u64>,
    /// Reconnects performed so far (observability for the chaos tests).
    reconnects: u64,
    /// Redials that switched to a fallback address.
    failovers: u64,
    /// Calls made, mixed into the per-call jitter stream.
    calls: u64,
    /// Default backoff shape for retrying methods.
    policy: RetryPolicy,
    /// Protocol version negotiated at connect ([`PROTOCOL_V1`] when the
    /// handshake was skipped or refused).
    negotiated: u16,
    /// Ceiling advertised at connect, re-advertised after a failover.
    ceiling: u16,
    /// Capability bits from the server's `Hello` reply (0 on v1).
    caps: u32,
}

fn unexpected(resp: Response) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("unexpected response: {resp:?}"),
    )
}

fn server_error(msg: String) -> io::Error {
    io::Error::other(format!("server error: {msg}"))
}

/// Connection failures worth one transparent redial (the server — or a
/// failpoint — dropped the connection, not the request semantics).
fn reconnectable(kind: io::ErrorKind) -> bool {
    matches!(
        kind,
        io::ErrorKind::BrokenPipe
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::UnexpectedEof
            | io::ErrorKind::NotConnected
    )
}

impl HullClient {
    /// Configure a connection: deadline, retry policy, protocol window.
    pub fn builder(addr: impl Into<String>) -> HullClientBuilder {
        HullClientBuilder::new(addr)
    }

    /// Connect (with `TCP_NODELAY`, request/response is latency-bound).
    ///
    /// Legacy v1 shim: no handshake is sent, so the connection behaves
    /// byte-for-byte like a pre-v2 client and [`HullClient::insert_batch`]
    /// falls back to single-point inserts.
    #[deprecated(since = "0.6.0", note = "use HullClient::builder(addr).connect()")]
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<HullClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let addr = stream.peer_addr().ok();
        Ok(HullClient {
            stream,
            addr,
            fallbacks: Vec::new(),
            deadline: None,
            last_degraded: None,
            last_stale: None,
            reconnects: 0,
            failovers: 0,
            calls: 0,
            policy: RetryPolicy::default(),
            negotiated: PROTOCOL_V1,
            ceiling: PROTOCOL_V1,
            caps: 0,
        })
    }

    /// The protocol version negotiated at connect time.
    pub fn negotiated_version(&self) -> u16 {
        self.negotiated
    }

    /// Capability bits from the server's `Hello` reply (0 on v1).
    pub fn caps(&self) -> u32 {
        self.caps
    }

    /// Generation of the most recent reply if it was `Degraded` (the
    /// shard's worker was being recovered and the answer came from the
    /// last good snapshot); `None` if the last reply was healthy.
    pub fn last_degraded(&self) -> Option<u32> {
        self.last_degraded
    }

    /// Staleness bound of the most recent reply if it was `Stale` (a
    /// follower replica answered while `lag` primary batch units behind);
    /// `None` if the last reply was current.
    pub fn last_stale(&self) -> Option<u64> {
        self.last_stale
    }

    /// Reconnect-and-resume redials performed so far.
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// Redials that failed over to a fallback address.
    pub fn failovers(&self) -> u64 {
        self.failovers
    }

    /// Renegotiate the protocol window on the current connection (used
    /// at connect and after a failover — the new node may be a
    /// different build). A server that answers `Hello` with an error is
    /// a v1 server; the client downgrades.
    fn handshake(&mut self) -> io::Result<()> {
        self.negotiated = PROTOCOL_V1;
        self.caps = 0;
        if self.ceiling < PROTOCOL_V2 {
            return Ok(());
        }
        match self.exchange(&Request::Hello {
            max_version: self.ceiling,
        })? {
            Response::Hello { version, caps } => {
                self.negotiated = version.min(self.ceiling).max(PROTOCOL_V1);
                self.caps = caps;
            }
            // A v1 server reports the unknown opcode; stay on v1.
            Response::Error(_) => {}
            other => return Err(unexpected(other)),
        }
        Ok(())
    }

    /// Redial after a dropped connection: the current address first,
    /// then each fallback in order. A connect that lands on a different
    /// address is a **failover** — the client re-runs the handshake
    /// there and resumes.
    fn redial(&mut self, last: io::Error) -> io::Result<()> {
        let primary = self.addr;
        let fallback_addrs: Vec<SocketAddr> = self
            .fallbacks
            .iter()
            .filter_map(|f| f.to_socket_addrs().ok().and_then(|mut it| it.next()))
            .collect();
        let mut last = last;
        for addr in primary.into_iter().chain(fallback_addrs) {
            let dial = match self.deadline {
                Some(d) => TcpStream::connect_timeout(&addr, d),
                None => TcpStream::connect(addr),
            };
            match dial {
                Ok(stream) => {
                    stream.set_nodelay(true)?;
                    self.stream = stream;
                    self.reconnects += 1;
                    crate::metrics::service_metrics().client_reconnects.incr();
                    if Some(addr) != primary {
                        self.addr = Some(addr);
                        self.failovers += 1;
                        crate::metrics::service_metrics().repl_failovers.incr();
                        self.handshake()?;
                    }
                    return Ok(());
                }
                Err(e) => last = e,
            }
        }
        Err(last)
    }

    fn exchange(&mut self, req: &Request) -> io::Result<Response> {
        write_frame(&mut self.stream, &req.encode())?;
        let payload = read_frame(&mut self.stream)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "server closed connection")
        })?;
        Response::decode(&payload).map_err(io::Error::from)
    }

    /// Send one request and read its reply (any variant, `Degraded`
    /// included). A dropped connection is redialed once and the request
    /// resent — note a resend after a lost response can double-apply an
    /// `Insert` (harmless to the hull; see module docs).
    pub fn raw(&mut self, req: &Request) -> io::Result<Response> {
        self.calls += 1;
        match self.exchange(req) {
            Ok(resp) => Ok(resp),
            Err(e) if reconnectable(e.kind()) => {
                if self.addr.is_none() && self.fallbacks.is_empty() {
                    return Err(e);
                }
                self.redial(e)?;
                self.exchange(req)
            }
            Err(e) => Err(e),
        }
    }

    /// Issue `reqs` back-to-back as v4 `Tagged` frames — all writes
    /// first, then all reads — and return the replies **in request
    /// order**, whatever order the server completed them in (tagged
    /// requests may execute concurrently across shards and reply out of
    /// order; the correlation id restores the pairing).
    ///
    /// Requires a v4 server advertising [`CAP_PIPELINE`]; fails with
    /// `Unsupported` otherwise. Replies are returned raw (a `Degraded`
    /// wrapper is *not* unwrapped) and no reconnect-and-resume is
    /// attempted: a connection lost mid-pipeline loses the whole
    /// pipeline. Keep batches modest (the server parks at most 1024
    /// frames per connection and pauses reads above 1 MiB of undrained
    /// replies, so a huge write-all-then-read-all pipeline can deadlock
    /// against its own backpressure); a few hundred requests is safe.
    pub fn pipeline(&mut self, reqs: &[Request]) -> io::Result<Vec<Response>> {
        if self.negotiated < PROTOCOL_V4 || self.caps & CAP_PIPELINE == 0 {
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                format!(
                    "pipelining needs protocol v4 + CAP_PIPELINE (negotiated v{}, caps {:#x})",
                    self.negotiated, self.caps
                ),
            ));
        }
        self.calls += reqs.len() as u64;
        for (id, req) in reqs.iter().enumerate() {
            let tagged = Request::Tagged {
                id: id as u64,
                inner: Box::new(req.clone()),
            };
            write_frame(&mut self.stream, &tagged.encode())?;
        }
        let mut out: Vec<Option<Response>> = (0..reqs.len()).map(|_| None).collect();
        let mut pending = reqs.len();
        while pending > 0 {
            let payload = read_frame(&mut self.stream)?.ok_or_else(|| {
                io::Error::new(io::ErrorKind::UnexpectedEof, "server closed mid-pipeline")
            })?;
            match Response::decode(&payload).map_err(io::Error::from)? {
                Response::Tagged { id, inner } => {
                    let slot = out.get_mut(id as usize).ok_or_else(|| {
                        io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("reply tagged {id}, but only {} requests sent", reqs.len()),
                        )
                    })?;
                    if slot.replace(*inner).is_some() {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("duplicate reply for tag {id}"),
                        ));
                    }
                    pending -= 1;
                }
                other => return Err(unexpected(other)),
            }
        }
        Ok(out.into_iter().map(|r| r.expect("all tags seen")).collect())
    }

    /// [`raw`](HullClient::raw), then unwrap the read-status wrappers
    /// into the inner answer — `Stale` (outer, v5 follower staleness
    /// bound) then `Degraded` (recovery generation) — recording each.
    fn ask(&mut self, req: &Request) -> io::Result<Response> {
        let mut resp = self.raw(req)?;
        self.last_stale = None;
        self.last_degraded = None;
        if let Response::Stale { lag, inner } = resp {
            self.last_stale = Some(lag);
            resp = *inner;
        }
        if let Response::Degraded { generation, inner } = resp {
            self.last_degraded = Some(generation);
            resp = *inner;
        }
        Ok(resp)
    }

    /// Queue one point; `false` means the shard is overloaded (retry).
    #[deprecated(since = "0.7.0", note = "use HullClient::mutate(MutationBatch)")]
    pub fn insert(&mut self, shard: u16, point: &[i64]) -> io::Result<bool> {
        self.send_insert(shard, point)
    }

    /// The v1 single-point insert frame (kept for the v1 downgrade
    /// path and the deprecated [`HullClient::insert`] shim).
    fn send_insert(&mut self, shard: u16, point: &[i64]) -> io::Result<bool> {
        match self.ask(&Request::Insert {
            shard,
            point: point.to_vec(),
        })? {
            Response::Inserted => Ok(true),
            Response::Overloaded => Ok(false),
            Response::Error(m) => Err(server_error(m)),
            other => Err(unexpected(other)),
        }
    }

    /// Insert, absorbing `Overloaded` pushback with capped exponential
    /// backoff and seeded jitter until `policy.deadline` elapses
    /// (`TimedOut` past it). Returns the number of rejections absorbed.
    #[deprecated(since = "0.7.0", note = "use HullClient::mutate(MutationBatch)")]
    pub fn insert_retry(
        &mut self,
        shard: u16,
        point: &[i64],
        policy: &RetryPolicy,
    ) -> io::Result<u64> {
        self.insert_retry_inner(shard, point, policy)
    }

    fn insert_retry_inner(
        &mut self,
        shard: u16,
        point: &[i64],
        policy: &RetryPolicy,
    ) -> io::Result<u64> {
        let start = Instant::now();
        let mut rng = ChaCha8Rng::seed_from_u64(policy.seed ^ self.calls);
        let mut delay = policy.base.max(Duration::from_micros(1));
        let mut rejections = 0u64;
        while !self.send_insert(shard, point)? {
            rejections += 1;
            if start.elapsed() >= policy.deadline {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!("insert still overloaded after {rejections} retries"),
                ));
            }
            // Jitter into the upper half of the window: full delays stay
            // bounded, but concurrent clients desynchronize instead of
            // stampeding the freshly drained queue together.
            let us = delay.as_micros() as u64;
            let jittered = rng.gen_range(us / 2 + 1..us + 1);
            std::thread::sleep(Duration::from_micros(jittered));
            delay = (delay * 2).min(policy.cap);
        }
        if rejections > 0 {
            crate::metrics::service_metrics()
                .client_rejections
                .add(rejections);
        }
        Ok(rejections)
    }

    /// Queue a whole batch of points; deprecated shim over
    /// [`HullClient::mutate`] (a pure-insert envelope), kept so old
    /// callers and old servers keep working unchanged.
    #[deprecated(since = "0.7.0", note = "use HullClient::mutate(MutationBatch)")]
    pub fn insert_batch(
        &mut self,
        shard: u16,
        points: &[Vec<i64>],
    ) -> io::Result<BatchInsertReply> {
        let batch = MutationBatch::from(
            points
                .iter()
                .map(|p| Mutation::Insert(p.clone()))
                .collect::<Vec<_>>(),
        );
        let r = self.mutate(shard, batch)?;
        Ok(BatchInsertReply {
            epoch: r.epoch,
            rejections: r.rejections,
        })
    }

    /// Apply a [`MutationBatch`] to `shard`, absorbing `Overloaded`
    /// pushback on the rejected suffix with the client's
    /// [`RetryPolicy`] until every mutation is queued (`TimedOut` past
    /// the deadline). **The unified write entry point**: inserts,
    /// deletes, and window expirations in one frame, applied by the
    /// shard worker as one journal unit (one epoch).
    ///
    /// Downgrades by negotiated protocol: v6 sends `Mutate` envelopes;
    /// a *pure-insert* batch on v2–v5 sends `InsertBatch` frames and on
    /// v1 degrades to per-point inserts, so insert-only callers work
    /// against any server. A batch carrying deletes or expirations on a
    /// pre-v6 connection fails with `Unsupported`.
    pub fn mutate(&mut self, shard: u16, batch: MutationBatch) -> io::Result<MutateReply> {
        if batch.is_empty() {
            return Ok(MutateReply {
                epoch: 0,
                rejections: 0,
            });
        }
        let policy = self.policy.clone();
        if self.negotiated >= PROTOCOL_V6 && self.caps & CAP_MUTATION != 0 {
            return self.mutate_v6(shard, batch.muts, &policy);
        }
        let mut points = Vec::with_capacity(batch.muts.len());
        for m in batch.muts {
            match m {
                Mutation::Insert(p) => points.push(p),
                Mutation::Delete(_) | Mutation::Expire(_) => {
                    return Err(io::Error::new(
                        io::ErrorKind::Unsupported,
                        format!(
                            "deletes/expirations need protocol v6 + CAP_MUTATION \
                             (negotiated v{}, caps {:#x})",
                            self.negotiated, self.caps
                        ),
                    ));
                }
            }
        }
        if self.negotiated < PROTOCOL_V2 {
            let mut rejections = 0u64;
            for p in &points {
                rejections += self.insert_retry_inner(shard, p, &policy)?;
            }
            return Ok(MutateReply {
                epoch: 0,
                rejections,
            });
        }
        self.insert_batch_v2(shard, points, &policy)
    }

    /// One `Mutate` frame per attempt (v6): the rejected suffix is
    /// resent together after a jittered backoff.
    fn mutate_v6(
        &mut self,
        shard: u16,
        muts: Vec<Mutation>,
        policy: &RetryPolicy,
    ) -> io::Result<MutateReply> {
        let start = Instant::now();
        let mut rng = ChaCha8Rng::seed_from_u64(policy.seed ^ self.calls);
        let mut delay = policy.base.max(Duration::from_micros(1));
        let mut pending = muts;
        let mut rejections = 0u64;
        let epoch = loop {
            let resp = self.ask(&Request::Mutate {
                shard,
                muts: pending.clone(),
            })?;
            match resp {
                Response::Mutated { accepted, epoch } => {
                    if accepted.len() != pending.len() {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!(
                                "mutate reply covers {} mutations, sent {}",
                                accepted.len(),
                                pending.len()
                            ),
                        ));
                    }
                    let mut retry = Vec::new();
                    for (m, ok) in pending.drain(..).zip(&accepted) {
                        if !*ok {
                            retry.push(m);
                        }
                    }
                    if retry.is_empty() {
                        break epoch;
                    }
                    rejections += retry.len() as u64;
                    if start.elapsed() >= policy.deadline {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            format!("{} mutations still overloaded", retry.len()),
                        ));
                    }
                    let us = delay.as_micros() as u64;
                    let jittered = rng.gen_range(us / 2 + 1..us + 1);
                    std::thread::sleep(Duration::from_micros(jittered));
                    delay = (delay * 2).min(policy.cap);
                    pending = retry;
                }
                Response::Error(m) => return Err(server_error(m)),
                other => return Err(unexpected(other)),
            }
        };
        if rejections > 0 {
            crate::metrics::service_metrics()
                .client_rejections
                .add(rejections);
        }
        Ok(MutateReply { epoch, rejections })
    }

    /// One `InsertBatch` frame per attempt (v2–v5 downgrade for
    /// pure-insert envelopes): the rejected suffix is resent together
    /// after a jittered backoff.
    fn insert_batch_v2(
        &mut self,
        shard: u16,
        points: Vec<Vec<i64>>,
        policy: &RetryPolicy,
    ) -> io::Result<MutateReply> {
        let start = Instant::now();
        let mut rng = ChaCha8Rng::seed_from_u64(policy.seed ^ self.calls);
        let mut delay = policy.base.max(Duration::from_micros(1));
        let mut pending = points;
        let mut rejections = 0u64;
        let epoch = loop {
            let resp = self.ask(&Request::InsertBatch {
                shard,
                points: pending.clone(),
            })?;
            match resp {
                Response::InsertedBatch { accepted, epoch } => {
                    if accepted.len() != pending.len() {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!(
                                "batch reply covers {} points, sent {}",
                                accepted.len(),
                                pending.len()
                            ),
                        ));
                    }
                    let mut retry = Vec::new();
                    for (p, ok) in pending.drain(..).zip(&accepted) {
                        if !*ok {
                            retry.push(p);
                        }
                    }
                    if retry.is_empty() {
                        break epoch;
                    }
                    rejections += retry.len() as u64;
                    if start.elapsed() >= policy.deadline {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            format!("{} batch points still overloaded", retry.len()),
                        ));
                    }
                    let us = delay.as_micros() as u64;
                    let jittered = rng.gen_range(us / 2 + 1..us + 1);
                    std::thread::sleep(Duration::from_micros(jittered));
                    delay = (delay * 2).min(policy.cap);
                    pending = retry;
                }
                Response::Error(m) => return Err(server_error(m)),
                other => return Err(unexpected(other)),
            }
        };
        if rejections > 0 {
            crate::metrics::service_metrics()
                .client_rejections
                .add(rejections);
        }
        Ok(MutateReply { epoch, rejections })
    }

    /// Membership query; `None` while the shard is bootstrapping.
    pub fn contains(&mut self, shard: u16, point: &[i64]) -> io::Result<Option<bool>> {
        match self.ask(&Request::Contains {
            shard,
            point: point.to_vec(),
        })? {
            Response::Bool(b) => Ok(Some(b)),
            Response::NotReady => Ok(None),
            Response::Error(m) => Err(server_error(m)),
            other => Err(unexpected(other)),
        }
    }

    /// Number of facets visible from the point; `None` while bootstrapping.
    pub fn visible(&mut self, shard: u16, point: &[i64]) -> io::Result<Option<u32>> {
        match self.ask(&Request::Visible {
            shard,
            point: point.to_vec(),
        })? {
            Response::VisibleCount(n) => Ok(Some(n)),
            Response::NotReady => Ok(None),
            Response::Error(m) => Err(server_error(m)),
            other => Err(unexpected(other)),
        }
    }

    /// Extreme vertex in a direction; `None` while bootstrapping.
    pub fn extreme(&mut self, shard: u16, dir: &[i64]) -> io::Result<Option<(u32, Vec<i64>)>> {
        match self.ask(&Request::Extreme {
            shard,
            direction: dir.to_vec(),
        })? {
            Response::Extreme { vertex, coords } => Ok(Some((vertex, coords))),
            Response::NotReady => Ok(None),
            Response::Error(m) => Err(server_error(m)),
            other => Err(unexpected(other)),
        }
    }

    /// Membership query forced down the linear-scan oracle path (v3,
    /// [`crate::wire::CAP_SCAN_QUERIES`]). Same answer as [`Self::contains`], but the
    /// server walks every alive facet instead of descending the history
    /// graph — the A/B baseline for query benchmarks.
    pub fn contains_scan(&mut self, shard: u16, point: &[i64]) -> io::Result<Option<bool>> {
        match self.ask(&Request::ContainsScan {
            shard,
            point: point.to_vec(),
        })? {
            Response::Bool(b) => Ok(Some(b)),
            Response::NotReady => Ok(None),
            Response::Error(m) => Err(server_error(m)),
            other => Err(unexpected(other)),
        }
    }

    /// Visible-facet count via the linear-scan oracle path (v3).
    pub fn visible_scan(&mut self, shard: u16, point: &[i64]) -> io::Result<Option<u32>> {
        match self.ask(&Request::VisibleScan {
            shard,
            point: point.to_vec(),
        })? {
            Response::VisibleCount(n) => Ok(Some(n)),
            Response::NotReady => Ok(None),
            Response::Error(m) => Err(server_error(m)),
            other => Err(unexpected(other)),
        }
    }

    /// Extreme vertex via the linear-scan oracle path (v3): re-derives
    /// the vertex set per query instead of using the snapshot cache.
    pub fn extreme_scan(&mut self, shard: u16, dir: &[i64]) -> io::Result<Option<(u32, Vec<i64>)>> {
        match self.ask(&Request::ExtremeScan {
            shard,
            direction: dir.to_vec(),
        })? {
            Response::Extreme { vertex, coords } => Ok(Some((vertex, coords))),
            Response::NotReady => Ok(None),
            Response::Error(m) => Err(server_error(m)),
            other => Err(unexpected(other)),
        }
    }

    /// Service counters as JSON (`None` aggregates all shards).
    pub fn stats(&mut self, shard: Option<u16>) -> io::Result<String> {
        match self.ask(&Request::Stats {
            shard: shard.unwrap_or(ALL_SHARDS),
        })? {
            Response::Stats(json) => Ok(json),
            Response::Error(m) => Err(server_error(m)),
            other => Err(unexpected(other)),
        }
    }

    /// The shard's current points and hull facets.
    pub fn snapshot(&mut self, shard: u16) -> io::Result<SnapshotReply> {
        match self.ask(&Request::Snapshot { shard })? {
            Response::Snapshot {
                epoch,
                dim,
                points,
                facets,
            } => Ok(SnapshotReply {
                epoch,
                dim,
                points: points.chunks(dim).map(|c| c.to_vec()).collect(),
                facets: facets.chunks(dim).map(|c| c.to_vec()).collect(),
            }),
            Response::Error(m) => Err(server_error(m)),
            other => Err(unexpected(other)),
        }
    }

    /// Barrier: every insert this client enqueued before the call is
    /// applied once this returns. Returns the publication epoch.
    pub fn flush(&mut self, shard: u16) -> io::Result<u64> {
        match self.ask(&Request::Flush { shard })? {
            Response::Flushed { epoch } => Ok(epoch),
            Response::Error(m) => Err(server_error(m)),
            other => Err(unexpected(other)),
        }
    }

    /// The server's telemetry registry as Prometheus text exposition —
    /// the same text its HTTP `/metrics` listener serves, fetched in-band
    /// over the wire protocol.
    pub fn metrics(&mut self) -> io::Result<String> {
        match self.ask(&Request::Metrics)? {
            Response::Metrics(text) => Ok(text),
            Response::Error(m) => Err(server_error(m)),
            other => Err(unexpected(other)),
        }
    }

    /// Ask the server to shut down gracefully.
    pub fn shutdown_server(&mut self) -> io::Result<()> {
        match self.ask(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            Response::Error(m) => Err(server_error(m)),
            other => Err(unexpected(other)),
        }
    }

    /// Pull one replication batch unit (v5, [`CAP_REPLICATION`]): the
    /// journal unit at `from_index` as `(index, total, dim, flat
    /// points)`. Empty `points` with `index == total` means caught up —
    /// poll again later. A shipment dropped by the primary's
    /// `replica.ship` failpoint surfaces as `WouldBlock`, so the
    /// follower puller counts a resubscribe and resumes from its own
    /// batch count.
    pub fn repl_fetch(
        &mut self,
        shard: u16,
        from_index: u64,
    ) -> io::Result<(u64, u64, usize, Vec<i64>)> {
        if self.negotiated >= PROTOCOL_V2 && self.caps & CAP_REPLICATION == 0 {
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                format!(
                    "replication needs protocol v5 + CAP_REPLICATION (negotiated v{}, caps {:#x})",
                    self.negotiated, self.caps
                ),
            ));
        }
        match self.ask(&Request::ReplSubscribe { shard, from_index })? {
            Response::ReplBatch {
                index,
                total,
                dim,
                points,
            } => Ok((index, total, dim, points)),
            Response::Overloaded => Err(io::Error::new(
                io::ErrorKind::WouldBlock,
                "primary dropped the replication shipment",
            )),
            Response::Error(m) => Err(server_error(m)),
            other => Err(unexpected(other)),
        }
    }

    /// Pull one *typed* replication unit (v6, [`CAP_MUTATION`]): the
    /// journal unit at `from_index` as `(index, total, dim, unit)`,
    /// where the unit distinguishes ordinary ops (inserts plus
    /// tombstones) from a survivor checkpoint that replaces everything
    /// before it. `index == total` with an empty `Ops` unit means
    /// caught up — poll again later. A shipment dropped by the
    /// primary's `replica.ship` failpoint surfaces as `WouldBlock`.
    pub fn repl_unit_fetch(
        &mut self,
        shard: u16,
        from_index: u64,
    ) -> io::Result<(u64, u64, usize, ReplUnit)> {
        if self.negotiated < PROTOCOL_V6 || self.caps & CAP_MUTATION == 0 {
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                format!(
                    "typed replication needs protocol v6 + CAP_MUTATION (negotiated v{}, caps {:#x})",
                    self.negotiated, self.caps
                ),
            ));
        }
        match self.ask(&Request::ReplUnitFetch { shard, from_index })? {
            Response::ReplUnit {
                index,
                total,
                dim,
                unit,
            } => Ok((index, total, dim, unit)),
            Response::Overloaded => Err(io::Error::new(
                io::ErrorKind::WouldBlock,
                "primary dropped the replication shipment",
            )),
            Response::Error(m) => Err(server_error(m)),
            other => Err(unexpected(other)),
        }
    }

    /// Tell the primary this follower has durably applied every unit
    /// below `index`; returns the primary's view of the follower's lag
    /// in batch units (feeds the `chull_replica_*` gauges there).
    pub fn repl_ack(&mut self, shard: u16, index: u64) -> io::Result<u64> {
        match self.ask(&Request::ReplAck { shard, index })? {
            Response::ReplAcked { lag } => Ok(lag),
            Response::Error(m) => Err(server_error(m)),
            other => Err(unexpected(other)),
        }
    }
}
