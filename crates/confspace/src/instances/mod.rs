//! Concrete configuration-space instances.

pub mod hull2d;
pub mod ridge2d;
pub mod sorted_pairs;
pub mod trapezoid;
