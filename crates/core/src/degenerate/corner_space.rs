//! The Section 6 **corner configuration space** for 3D hulls with
//! degeneracies, as a [`ConfigurationSpace`] instance.
//!
//! Objects are 3D points (duplicates excluded, degeneracies welcome).
//! Configurations are corners: a corner point `pm`, two neighbors, and a
//! side of their plane (six configurations per non-collinear triple,
//! multiplicity 6, degree 3). Lemma 6.1: the active configurations of `Y`
//! are exactly the corners of the polygonal hull of `Y`. Lemma 6.2: the
//! space has 4-support.
//!
//! `support_set` finds a minimal valid support set by guided search: per the
//! proof of Lemma 6.2 the supporting corners have their corner point among
//! the defining points of the supported corner, so the candidate pool is
//! tiny. The search verifies Definition 3.2 directly, making the E6
//! experiment an end-to-end check of the lemma.

use super::poly_hull::{corner_conflicts, poly_hull, Corner};
use chull_confspace::space::ConfigurationSpace;
use chull_geometry::Point3i;

/// The corner configuration space over a fixed 3D point set.
pub struct CornerSpace {
    points: Vec<Point3i>,
}

impl CornerSpace {
    /// Build the space (points must be distinct; coordinates within
    /// [`super::poly_hull::DEGEN_MAX_COORD`]).
    pub fn new(points: Vec<Point3i>) -> CornerSpace {
        assert!(points.len() >= 4);
        CornerSpace { points }
    }

    /// The input points.
    pub fn points(&self) -> &[Point3i] {
        &self.points
    }

    /// The hull corners of the subset `objs`, with global ids.
    pub fn corners_of(&self, objs: &[usize]) -> Vec<Corner> {
        let sub_pts: Vec<Point3i> = objs.iter().map(|&i| self.points[i]).collect();
        let hull = poly_hull(&sub_pts);
        hull.corners
            .into_iter()
            .map(|c| {
                let (mut a, mut b) = (objs[c.a as usize] as u32, objs[c.b as usize] as u32);
                if a > b {
                    std::mem::swap(&mut a, &mut b);
                }
                Corner {
                    pm: objs[c.pm as usize] as u32,
                    a,
                    b,
                    side_positive: remap_side(c, objs),
                }
            })
            .collect()
    }
}

/// The `side_positive` flag is defined relative to the *ordered* triple
/// `(a, pm, b)` with `a < b` — local and global id orders may disagree, in
/// which case the orientation (and hence the flag) flips.
fn remap_side(c: Corner, objs: &[usize]) -> bool {
    let ga = objs[c.a as usize] as u32;
    let gb = objs[c.b as usize] as u32;
    if (c.a < c.b) == (ga < gb) {
        c.side_positive
    } else {
        !c.side_positive
    }
}

impl ConfigurationSpace for CornerSpace {
    type Config = Corner;

    fn num_objects(&self) -> usize {
        self.points.len()
    }
    fn max_degree(&self) -> usize {
        3
    }
    fn multiplicity(&self) -> usize {
        6 // three corner choices x two sides per non-collinear triple
    }
    fn base_size(&self) -> usize {
        4
    }
    fn support_bound(&self) -> usize {
        4 // Lemma 6.2
    }

    fn defining_set(&self, pi: &Corner) -> Vec<usize> {
        vec![pi.a as usize, pi.pm as usize, pi.b as usize]
    }

    fn conflicts(&self, pi: &Corner, x: usize) -> bool {
        corner_conflicts(&self.points, pi, x as u32)
    }

    fn active_configs(&self, objs: &[usize]) -> Vec<Corner> {
        self.corners_of(objs)
    }

    fn support_set(&self, objs: &[usize], pi: &Corner, x: usize) -> Vec<Corner> {
        let rest: Vec<usize> = objs.iter().copied().filter(|&o| o != x).collect();
        let active = self.corners_of(&rest);
        let defining = self.defining_set(pi);

        // Candidate pools, widened progressively (the Lemma 6.2 proof only
        // needs corners whose corner point defines pi).
        let pm_pool: Vec<&Corner> = active
            .iter()
            .filter(|c| defining.contains(&(c.pm as usize)) && c.pm as usize != x)
            .collect();
        let touch_pool: Vec<&Corner> = active
            .iter()
            .filter(|c| {
                self.defining_set(c)
                    .iter()
                    .any(|d| defining.contains(d) && *d != x)
            })
            .collect();
        for pool in [&pm_pool, &touch_pool] {
            if let Some(found) = self.search_support(pool, pi, x) {
                return found;
            }
        }
        // Last resort: the whole active set (should be unreachable if
        // Lemma 6.2 holds; kept so a lemma violation surfaces as a
        // TooLarge/NotFound failure rather than a wrong answer).
        let all: Vec<&Corner> = active.iter().collect();
        self.search_support(&all, pi, x).unwrap_or_else(|| {
            panic!("no 4-support found for {pi:?}, x = {x} — Lemma 6.2 violated?")
        })
    }
}

impl CornerSpace {
    /// Search for a minimal subset of `pool` (size 1..=4) satisfying
    /// Definition 3.2 for `(pi, x)`.
    fn search_support(&self, pool: &[&Corner], pi: &Corner, x: usize) -> Option<Vec<Corner>> {
        let m = pool.len();
        // Precompute, for each candidate, which required conflicts it
        // covers and which defining objects it provides.
        let required: Vec<usize> = {
            let mut req: Vec<usize> = (0..self.num_objects())
                .filter(|&o| self.conflicts(pi, o))
                .collect();
            if !req.contains(&x) {
                req.push(x);
            }
            req
        };
        let need_defs: Vec<usize> = self
            .defining_set(pi)
            .into_iter()
            .filter(|&d| d != x)
            .collect();

        let covers = |subset: &[usize]| -> bool {
            for &d in &need_defs {
                if !subset
                    .iter()
                    .any(|&ci| self.defining_set(pool[ci]).contains(&d))
                {
                    return false;
                }
            }
            for &o in &required {
                if !subset.iter().any(|&ci| self.conflicts(pool[ci], o)) {
                    return false;
                }
            }
            true
        };

        for size in 1..=4usize.min(m) {
            let mut idx: Vec<usize> = (0..size).collect();
            'combos: loop {
                if covers(&idx) {
                    return Some(idx.iter().map(|&i| *pool[i]).collect());
                }
                // Advance to the next size-combination of 0..m.
                let mut i = size;
                loop {
                    if i == 0 {
                        break 'combos; // enumeration exhausted
                    }
                    i -= 1;
                    if idx[i] < i + m - size {
                        idx[i] += 1;
                        for j in (i + 1)..size {
                            idx[j] = idx[j - 1] + 1;
                        }
                        continue 'combos;
                    }
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chull_confspace::space::{check_support, SupportCheck};
    use chull_geometry::generators;

    fn prepare_order(points: &[Point3i], seed: u64) -> (Vec<Point3i>, Vec<usize>) {
        // Shuffle, then move 4 affinely independent points to the front so
        // every prefix >= 4 has a 3D hull.
        use chull_geometry::exact::affine_rank;
        let perm = generators::random_permutation(points.len(), seed);
        let shuffled: Vec<Point3i> = perm.iter().map(|&i| points[i]).collect();
        let mut chosen: Vec<usize> = Vec::new();
        for i in 0..shuffled.len() {
            let mut rows: Vec<&[i64]> = Vec::new();
            let coords: Vec<[i64; 3]> = chosen.iter().map(|&c| shuffled[c].coords()).collect();
            for c in &coords {
                rows.push(c);
            }
            let cand = shuffled[i].coords();
            rows.push(&cand);
            if affine_rank(&rows) == rows.len() {
                chosen.push(i);
                if chosen.len() == 4 {
                    break;
                }
            }
        }
        assert_eq!(chosen.len(), 4, "input fully degenerate");
        let mut order: Vec<usize> = chosen.clone();
        order.extend((0..shuffled.len()).filter(|i| !chosen.contains(i)));
        (shuffled, order)
    }

    #[test]
    fn lemma_6_1_active_configs_are_hull_corners() {
        // Independent statement of Lemma 6.1: a corner is active (conflicts
        // with nothing in Y) iff it is a corner of the hull of Y.
        let pts = generators::grid_3d(3, 1).into_iter().collect::<Vec<_>>();
        let space = CornerSpace::new(pts.clone());
        let objs: Vec<usize> = (0..pts.len()).collect();
        let active = space.active_configs(&objs);
        for c in &active {
            for o in &objs {
                assert!(
                    !space.conflicts(c, *o),
                    "active corner {c:?} conflicts with {o}"
                );
            }
        }
        // Hull corner count of the 3x3x3 grid cube: 8 vertices x 3 faces.
        assert_eq!(active.len(), 24);
    }

    #[test]
    fn lemma_6_2_four_support_on_degenerate_grid() {
        let pts = generators::grid_3d(3, 7);
        let (shuffled, order) = prepare_order(&pts, 3);
        let space = CornerSpace::new(shuffled);
        // Check a few prefixes exhaustively (full n is slow in debug).
        for i in [6usize, 10, 14] {
            let prefix = &order[..i];
            for pi in space.active_configs(prefix) {
                for x in space.defining_set(&pi) {
                    if prefix[..4].contains(&x) {
                        continue;
                    }
                    let res = check_support(&space, prefix, &pi, x);
                    assert_eq!(
                        res,
                        SupportCheck::Valid,
                        "4-support violated at prefix {i} for {pi:?}, x = {x}"
                    );
                }
            }
        }
    }

    #[test]
    fn four_support_on_cube_faces() {
        let pts = generators::cube_faces_3d(18, 8, 5);
        let (shuffled, order) = prepare_order(&pts, 9);
        let space = CornerSpace::new(shuffled);
        for i in [8usize, 12] {
            let prefix = &order[..i];
            for pi in space.active_configs(prefix) {
                for x in space.defining_set(&pi) {
                    if prefix[..4].contains(&x) {
                        continue;
                    }
                    assert_eq!(
                        check_support(&space, prefix, &pi, x),
                        SupportCheck::Valid,
                        "prefix {i}, {pi:?}, x = {x}"
                    );
                }
            }
        }
    }

    #[test]
    fn dependence_depth_on_degenerate_input() {
        // E6: the corner dependence graph stays shallow on degenerate
        // inputs (Theorem 4.2 with g = 3, k = 4).
        use chull_confspace::depgraph::build_dep_graph;
        let pts = generators::grid_3d(3, 2);
        let (shuffled, order) = prepare_order(&pts, 11);
        let space = CornerSpace::new(shuffled);
        let stats = build_dep_graph(&space, &order, false);
        let hn: f64 = (1..=order.len()).map(|i| 1.0 / i as f64).sum();
        // sigma >= g k e^2 ~ 89 for corners; generous bound.
        assert!(
            (stats.depth as f64) < 90.0 * hn,
            "corner dep depth {} too large",
            stats.depth
        );
        assert!(stats.depth >= 1);
    }

    #[test]
    fn corner_count_at_most_3x_triangulation() {
        // Section 6: corner count <= 3 x non-degenerate facet count; for
        // random (general-position) inputs it is exactly 3 x.
        let pts = generators::ball_3d(24, 1 << 16, 4);
        let space = CornerSpace::new(pts.clone());
        let objs: Vec<usize> = (0..pts.len()).collect();
        let corners = space.active_configs(&objs);
        let ps = chull_geometry::PointSet::from_points3(&pts);
        let tri = crate::baseline::brute::hull_output(&ps);
        assert_eq!(corners.len(), 3 * tri.num_facets());
    }
}
