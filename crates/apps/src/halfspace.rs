//! Half-space (half-plane) intersection — Section 7 of the paper.
//!
//! Objects are half-planes `{(x, y) : a x + b y <= c}` with `c > 0` (the
//! origin strictly inside every one, and a common right-hand side `c = R`).
//! Configurations are the intersection *vertices* defined by pairs of
//! boundary lines; a configuration conflicts with every half-plane that
//! does not contain it. The paper shows this space has 2-support: adding a
//! half-plane cuts one edge of the current polygon, and the edge's two
//! endpoint vertices support each new vertex.
//!
//! Two independent computations cross-validate each other:
//! * the **direct** formulation, as a
//!   [`chull_confspace::ConfigurationSpace`] instance
//!   ([`HalfplaneSpace`]), and
//! * **duality**: with common `c = R`, the dual of half-plane `n . x <= R`
//!   is the point `n`; the intersection's vertices correspond 1:1 to the
//!   edges of the convex hull of the dual points
//!   ([`intersection_via_duality`]).

use chull_confspace::space::ConfigurationSpace;
use chull_core::baseline::monotone_chain;
use chull_geometry::Point2i;

/// A half-plane `a x + b y <= c`, `c > 0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Halfplane {
    /// Normal x-component.
    pub a: i64,
    /// Normal y-component.
    pub b: i64,
    /// Right-hand side (`> 0`: origin strictly inside).
    pub c: i64,
}

/// An intersection vertex defined by the boundary lines of half-planes
/// `i < j`, in homogeneous rational coordinates `(x, y, w)`; the Euclidean
/// point is `(x/w, y/w)` and `w != 0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Vertex {
    /// Smaller half-plane index.
    pub i: usize,
    /// Larger half-plane index.
    pub j: usize,
}

/// Homogeneous coordinates of the intersection point of the two boundary
/// lines (`None` if parallel).
pub fn vertex_coords(hs: &[Halfplane], v: Vertex) -> Option<(i128, i128, i128)> {
    let (h1, h2) = (hs[v.i], hs[v.j]);
    let den = (h1.a as i128) * (h2.b as i128) - (h2.a as i128) * (h1.b as i128);
    if den == 0 {
        return None;
    }
    let x = (h1.c as i128) * (h2.b as i128) - (h2.c as i128) * (h1.b as i128);
    let y = (h1.a as i128) * (h2.c as i128) - (h2.a as i128) * (h1.c as i128);
    Some((x, y, den))
}

/// Does half-plane `h` strictly exclude the homogeneous point?
pub fn excludes(h: Halfplane, (x, y, w): (i128, i128, i128)) -> bool {
    // a x + b y > c w  (sign-adjusted for w < 0).
    let lhs = (h.a as i128) * x + (h.b as i128) * y;
    let rhs = (h.c as i128) * w;
    if w > 0 {
        lhs > rhs
    } else {
        lhs < rhs
    }
}

/// The half-plane intersection configuration space (direct formulation).
pub struct HalfplaneSpace {
    hs: Vec<Halfplane>,
}

impl HalfplaneSpace {
    /// Build the space. General position assumed (no two parallel boundary
    /// lines among interacting constraints, no three lines concurrent);
    /// the first three half-planes must form a bounded triangle.
    pub fn new(hs: Vec<Halfplane>) -> HalfplaneSpace {
        assert!(hs.len() >= 3);
        for h in &hs {
            assert!(h.c > 0, "origin must be strictly inside every half-plane");
        }
        HalfplaneSpace { hs }
    }

    /// The half-planes.
    pub fn halfplanes(&self) -> &[Halfplane] {
        &self.hs
    }

    /// The intersection polygon's vertices for the subset `objs`
    /// (brute force `O(|Y|^3)`).
    pub fn polygon_vertices(&self, objs: &[usize]) -> Vec<Vertex> {
        let mut out = Vec::new();
        for (ii, &i) in objs.iter().enumerate() {
            for &j in &objs[ii + 1..] {
                let v = Vertex {
                    i: i.min(j),
                    j: i.max(j),
                };
                let coords = match vertex_coords(&self.hs, v) {
                    Some(c) => c,
                    None => continue,
                };
                if objs
                    .iter()
                    .all(|&k| k == v.i || k == v.j || !excludes(self.hs[k], coords))
                {
                    out.push(v);
                }
            }
        }
        out
    }
}

impl ConfigurationSpace for HalfplaneSpace {
    type Config = Vertex;

    fn num_objects(&self) -> usize {
        self.hs.len()
    }
    fn max_degree(&self) -> usize {
        2
    }
    fn multiplicity(&self) -> usize {
        1
    }
    fn base_size(&self) -> usize {
        3
    }
    fn support_bound(&self) -> usize {
        2
    }

    fn defining_set(&self, pi: &Vertex) -> Vec<usize> {
        vec![pi.i, pi.j]
    }

    fn conflicts(&self, pi: &Vertex, x: usize) -> bool {
        if x == pi.i || x == pi.j {
            return false;
        }
        match vertex_coords(&self.hs, *pi) {
            Some(c) => excludes(self.hs[x], c),
            None => false,
        }
    }

    fn active_configs(&self, objs: &[usize]) -> Vec<Vertex> {
        self.polygon_vertices(objs)
    }

    fn support_set(&self, objs: &[usize], pi: &Vertex, x: usize) -> Vec<Vertex> {
        assert!(x == pi.i || x == pi.j);
        let line = if x == pi.i { pi.j } else { pi.i };
        let rest: Vec<usize> = objs.iter().copied().filter(|&o| o != x).collect();
        // The two endpoints of `line`'s edge in the polygon without x.
        let sup: Vec<Vertex> = self
            .polygon_vertices(&rest)
            .into_iter()
            .filter(|v| v.i == line || v.j == line)
            .collect();
        assert_eq!(
            sup.len(),
            2,
            "line {line} should contribute exactly one edge to the polygon without {x}"
        );
        sup
    }
}

/// Compute the intersection polygon of half-planes with a **common**
/// right-hand side, via duality: the vertices correspond to the hull edges
/// of the dual points `(a_k, b_k)`. Returns vertices in hull-edge order as
/// homogeneous rational coordinates.
pub fn intersection_via_duality(hs: &[Halfplane]) -> Vec<(Vertex, (i128, i128, i128))> {
    let c0 = hs[0].c;
    assert!(
        hs.iter().all(|h| h.c == c0),
        "duality shortcut requires a common right-hand side"
    );
    let duals: Vec<Point2i> = hs.iter().map(|h| Point2i::new(h.a, h.b)).collect();
    let hull = monotone_chain::hull_indices(&duals);
    let mut out = Vec::new();
    for k in 0..hull.len() {
        let (i, j) = (hull[k] as usize, hull[(k + 1) % hull.len()] as usize);
        let v = Vertex {
            i: i.min(j),
            j: i.max(j),
        };
        let coords = vertex_coords(hs, v).expect("adjacent dual hull points not parallel");
        out.push((v, coords));
    }
    out
}

/// Deterministic random half-planes whose intersection is bounded: normals
/// sampled near a circle of radius `r` (common `c = r^2`-ish scale), seeded
/// with three spread normals.
pub fn random_halfplanes(n: usize, seed: u64) -> Vec<Halfplane> {
    assert!(n >= 3);
    let r = 1 << 16;
    let c = r;
    let mut hs = vec![
        Halfplane { a: r, b: 3, c },
        Halfplane {
            a: -r / 2,
            b: r - 7,
            c,
        },
        Halfplane {
            a: -r / 2 + 5,
            b: -r + 11,
            c,
        },
    ];
    let normals = chull_geometry::generators::near_circle_2d(n, r, seed);
    for p in normals {
        if hs.len() == n {
            break;
        }
        let h = Halfplane { a: p.x, b: p.y, c };
        if !hs.contains(&h) {
            hs.push(h);
        }
    }
    assert_eq!(hs.len(), n);
    hs
}

#[cfg(test)]
mod tests {
    use super::*;
    use chull_confspace::depgraph::build_dep_graph;
    use chull_confspace::space::{check_k_support_along_order, check_support, SupportCheck};
    use chull_geometry::generators;

    fn unit_square_plus() -> HalfplaneSpace {
        // x <= 1, -x <= 1, y <= 1, -y <= 1, and a cut corner.
        HalfplaneSpace::new(vec![
            Halfplane { a: 1, b: 0, c: 1 },
            Halfplane { a: 0, b: 1, c: 1 },
            Halfplane { a: -1, b: -1, c: 1 }, // bounded triangle with the first two
            Halfplane { a: -1, b: 0, c: 1 },
            Halfplane { a: 0, b: -1, c: 1 },
            Halfplane { a: 1, b: 1, c: 1 }, // cuts the (1, 1) corner... wait: x + y <= 1
        ])
    }

    #[test]
    fn vertex_coords_cramer() {
        // x <= 2 and y <= 3 meet at (2, 3).
        let hs = vec![
            Halfplane { a: 1, b: 0, c: 2 },
            Halfplane { a: 0, b: 1, c: 3 },
        ];
        let (x, y, w) = vertex_coords(&hs, Vertex { i: 0, j: 1 }).unwrap();
        assert_eq!((x / w, y / w), (2, 3));
        // Parallel boundaries have no vertex.
        let hs = vec![
            Halfplane { a: 1, b: 1, c: 2 },
            Halfplane { a: 2, b: 2, c: 5 },
        ];
        assert!(vertex_coords(&hs, Vertex { i: 0, j: 1 }).is_none());
    }

    #[test]
    fn excludes_handles_negative_denominator() {
        // Force w < 0 by ordering: lines x = 2 (as -x >= -2 ... keep c > 0
        // convention) — craft via swapped normals.
        let hs = vec![
            Halfplane { a: 0, b: 1, c: 3 },
            Halfplane { a: 1, b: 0, c: 2 },
        ];
        let coords = vertex_coords(&hs, Vertex { i: 0, j: 1 }).unwrap();
        // The vertex is (2, 3) regardless of sign of the homogeneous w.
        let h_in = Halfplane { a: 1, b: 1, c: 6 }; // x + y <= 6 contains (2,3)
        let h_out = Halfplane { a: 1, b: 1, c: 4 }; // x + y <= 4 excludes it
        assert!(!excludes(h_in, coords));
        assert!(excludes(h_out, coords));
    }

    #[test]
    fn polygon_vertices_of_square() {
        let s = unit_square_plus();
        // First five: triangle cut to the unit square-ish shape.
        let vs = s.polygon_vertices(&[0, 1, 3, 4]);
        assert_eq!(vs.len(), 4, "square has 4 vertices: {vs:?}");
        // Adding x + y <= 1 cuts the (1,1) corner into two vertices.
        let vs = s.polygon_vertices(&[0, 1, 3, 4, 5]);
        assert_eq!(vs.len(), 5);
        assert!(
            !vs.contains(&Vertex { i: 0, j: 1 }),
            "cut corner still present"
        );
    }

    #[test]
    fn conflict_is_exclusion() {
        let s = unit_square_plus();
        // Vertex (0,1) = (1,1); half-plane 5 (x + y <= 1) excludes it.
        let v = Vertex { i: 0, j: 1 };
        assert!(s.conflicts(&v, 5));
        assert!(!s.conflicts(&v, 3));
        assert!(!s.conflicts(&v, 4));
    }

    #[test]
    fn two_support_verified() {
        let s = unit_square_plus();
        let objs = vec![0, 1, 2, 3, 4, 5];
        // Vertex (4,5): intersection of y = -1... compute: 5 is x+y<=1,
        // 4 is -y<=1; vertex at y=-1, x=2. Defined after adding 5.
        let v = Vertex { i: 4, j: 5 };
        if s.polygon_vertices(&objs).contains(&v) {
            assert_eq!(check_support(&s, &objs, &v, 5), SupportCheck::Valid);
        }
        // Exhaustive over random insertion orders.
        for seed in 0..3 {
            let hs = random_halfplanes(12, seed + 40);
            let space = HalfplaneSpace::new(hs);
            let mut order: Vec<usize> = (3..12).collect();
            use chull_geometry::rng::SliceRandom;
            order.shuffle(&mut generators::rng(seed));
            let mut full = vec![0, 1, 2];
            full.extend(order);
            assert_eq!(
                check_k_support_along_order(&space, &full),
                None,
                "seed {seed}"
            );
        }
    }

    #[test]
    fn duality_matches_direct() {
        for seed in 0..4u64 {
            let hs = random_halfplanes(40, seed);
            let space = HalfplaneSpace::new(hs.clone());
            let objs: Vec<usize> = (0..hs.len()).collect();
            let mut direct: Vec<Vertex> = space.polygon_vertices(&objs);
            let mut dual: Vec<Vertex> = intersection_via_duality(&hs)
                .into_iter()
                .map(|(v, _)| v)
                .collect();
            direct.sort_unstable_by_key(|v| (v.i, v.j));
            dual.sort_unstable_by_key(|v| (v.i, v.j));
            assert_eq!(direct, dual, "seed {seed}");
        }
    }

    #[test]
    fn dependence_depth_logarithmic() {
        let hs = random_halfplanes(64, 11);
        let space = HalfplaneSpace::new(hs);
        let mut order: Vec<usize> = (3..64).collect();
        use chull_geometry::rng::SliceRandom;
        order.shuffle(&mut generators::rng(13));
        let mut full = vec![0, 1, 2];
        full.extend(order);
        let stats = build_dep_graph(&space, &full, false);
        let hn: f64 = (1..=64).map(|i| 1.0 / i as f64).sum();
        assert!((stats.depth as f64) < 30.0 * hn, "depth {}", stats.depth);
        assert!(stats.depth >= 1);
    }
}
