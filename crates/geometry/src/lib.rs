//! # chull-geometry
//!
//! Geometric substrate for the SPAA 2020 parallel randomized incremental
//! convex hull reproduction: exact arithmetic ([`exact`]), exact and robust
//! predicates ([`predicates`]), point types ([`point`]), and reproducible
//! workload generators ([`generators`]).
//!
//! The hull algorithms in `chull-core` rely on this crate for every
//! plane-side (visibility) test, which the paper assumes to be exact.

#![warn(missing_docs)]

pub mod exact;
pub mod generators;
pub mod kernel;
pub mod point;
pub mod predicates;
pub mod rng;

pub use exact::{BigInt, Sign};
pub use kernel::{Hyperplane, KernelCounts, PlaneBlock};
pub use point::{Point2f, Point2i, Point3f, Point3i, PointSet, MAX_COORD};
