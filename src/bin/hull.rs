//! `hull` — a command-line convex hull tool over the suite.
//!
//! **Offline mode** (default): reads whitespace-separated integer
//! coordinates (one point per line) from a file or stdin, computes the
//! hull with the requested algorithm, and prints the hull facets (as
//! 0-based input indices) plus instrumentation.
//!
//! **Serving mode**: `hull serve` runs the long-lived `chull-service`
//! hull server; `hull query` talks to one over its wire protocol.
//!
//! ```text
//! USAGE: hull [--dim D] [--algo seq|par|rounds|chain] [--seed S]
//!             [--stats] [--stats-json] [FILE]
//!        hull serve [--addr H:P] [--dim D] [--shards N] [--queue-cap C]
//!                   [--batch B] [--wal DIR] [--chaos-seed S]
//!                   [--oneshot] [--stats-json]
//!        hull query ADDR OP [SHARD] [COORDS...]
//!          OP: insert|contains|visible|extreme|stats|snapshot|flush|
//!              shutdown|script      (script reads one OP line per stdin line)
//! ```
//!
//! Examples:
//! ```text
//! $ printf '0 0\n4 0\n0 4\n4 4\n2 2\n' | hull
//! $ hull --dim 3 --algo par --stats points3d.txt
//! $ hull serve --addr 127.0.0.1:4077 --dim 2 &
//! $ hull query 127.0.0.1:4077 insert 0 3 4
//! $ hull query 127.0.0.1:4077 contains 0 1 1
//! ```

use convex_hull_suite::core::baseline::monotone_chain;
use convex_hull_suite::core::context::prepare_points_with_perm;
use convex_hull_suite::core::par::rounds::rounds_hull;
use convex_hull_suite::core::par::{parallel_hull, ParOptions};
use convex_hull_suite::core::seq::incremental_hull_run;
use convex_hull_suite::core::{HullOutput, HullStats};
use convex_hull_suite::geometry::{Point2i, PointSet};
use convex_hull_suite::service::{serve, HullClient, ServeOptions};
use std::io::Read;

/// Parsed command-line options.
#[derive(Debug, PartialEq, Eq)]
struct Options {
    dim: usize,
    algo: Algo,
    seed: u64,
    stats: bool,
    stats_json: bool,
    file: Option<String>,
}

#[derive(Debug, PartialEq, Eq, Clone, Copy)]
enum Algo {
    Seq,
    Par,
    Rounds,
    Chain,
}

fn usage() -> ! {
    eprintln!(
        "USAGE: hull [--dim D] [--algo seq|par|rounds|chain] [--seed S] [--stats] [--stats-json] [FILE]\n\
         \x20      hull serve [--addr H:P] [--dim D] [--shards N] [--queue-cap C] [--batch B]\n\
         \x20                 [--wal DIR] [--chaos-seed S] [--oneshot] [--stats-json]\n\
         \x20        --wal DIR persists per-shard insert WALs under DIR (crash-safe restart);\n\
         \x20        --chaos-seed S arms the canned fault-injection schedule (testing only)\n\
         \x20      hull query ADDR OP [SHARD] [COORDS...]\n\
         \x20        OP: insert|contains|visible|extreme SHARD C1..CD\n\
         \x20            stats [SHARD] | snapshot SHARD | flush SHARD | shutdown\n\
         \x20            script   (reads one OP line per stdin line, one connection)\n\
         Offline mode reads one point per line (D whitespace-separated integers); FILE defaults to stdin."
    );
    std::process::exit(2);
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        dim: 2,
        algo: Algo::Seq,
        seed: 42,
        stats: false,
        stats_json: false,
        file: None,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--dim" => {
                opts.dim = it
                    .next()
                    .ok_or("--dim needs a value")?
                    .parse()
                    .map_err(|_| "bad --dim value")?;
            }
            "--algo" => {
                opts.algo = match it.next().ok_or("--algo needs a value")?.as_str() {
                    "seq" => Algo::Seq,
                    "par" => Algo::Par,
                    "rounds" => Algo::Rounds,
                    "chain" => Algo::Chain,
                    other => return Err(format!("unknown algorithm '{other}'")),
                };
            }
            "--seed" => {
                opts.seed = it
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|_| "bad --seed value")?;
            }
            "--stats" => opts.stats = true,
            "--stats-json" => opts.stats_json = true,
            "--help" | "-h" => return Err("help".to_string()),
            f if !f.starts_with('-') => {
                if opts.file.is_some() {
                    return Err("multiple input files".to_string());
                }
                opts.file = Some(f.to_string());
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    if opts.dim < 2 || opts.dim > 8 {
        return Err("--dim must be in 2..=8".to_string());
    }
    if opts.algo == Algo::Chain && opts.dim != 2 {
        return Err("--algo chain is 2D only".to_string());
    }
    if opts.algo == Algo::Chain && opts.stats_json {
        return Err("--stats-json needs an instrumented algorithm (not chain)".to_string());
    }
    Ok(opts)
}

/// Parse whitespace-separated integer points, one per line.
fn parse_points(input: &str, dim: usize) -> Result<PointSet, String> {
    let mut ps = PointSet::new(dim);
    for (lineno, line) in input.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let coords: Result<Vec<i64>, _> =
            line.split_whitespace().map(|t| t.parse::<i64>()).collect();
        let coords = coords.map_err(|e| format!("line {}: {e}", lineno + 1))?;
        if coords.len() != dim {
            return Err(format!(
                "line {}: expected {dim} coordinates, got {}",
                lineno + 1,
                coords.len()
            ));
        }
        ps.push(&coords);
    }
    if ps.len() < dim + 1 {
        return Err(format!(
            "need at least {} points for a {dim}D hull",
            dim + 1
        ));
    }
    Ok(ps)
}

fn print_output(
    out: &HullOutput,
    stats: Option<&HullStats>,
    stats_json: Option<&HullStats>,
    perm: Option<&[usize]>,
) {
    for f in &out.facets {
        let ids: Vec<String> = f[..out.dim]
            .iter()
            .map(|&v| match perm {
                Some(p) => p[v as usize].to_string(),
                None => v.to_string(),
            })
            .collect();
        println!("{}", ids.join(" "));
    }
    if let Some(s) = stats {
        eprintln!(
            "# n={} dim={} hull_facets={} facets_created={} visibility_tests={} dep_depth={} recursion_depth={} rounds={}",
            s.n,
            s.dim,
            s.hull_facets,
            s.facets_created,
            s.visibility_tests,
            s.dep_depth,
            s.recursion_depth,
            s.rounds
        );
        eprintln!(
            "# kernel: filter_hits={} i128_fallbacks={} bigint_fallbacks={}",
            s.filter_hits, s.i128_fallbacks, s.bigint_fallbacks
        );
    }
    if let Some(s) = stats_json {
        println!("{}", s.to_json());
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("serve") => serve_main(&args[1..]),
        Some("query") => query_main(&args[1..]),
        _ => offline_main(&args),
    }
}

fn offline_main(args: &[String]) {
    let opts = match parse_args(args) {
        Ok(o) => o,
        Err(e) => {
            if e != "help" {
                eprintln!("error: {e}");
            }
            usage();
        }
    };
    let mut input = String::new();
    match &opts.file {
        Some(f) => {
            input = std::fs::read_to_string(f).unwrap_or_else(|e| {
                eprintln!("error reading {f}: {e}");
                std::process::exit(1);
            });
        }
        None => {
            std::io::stdin()
                .read_to_string(&mut input)
                .expect("reading stdin");
        }
    }
    let pts = parse_points(&input, opts.dim).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });

    if opts.algo == Algo::Chain {
        let raw: Vec<Point2i> = (0..pts.len())
            .map(|i| Point2i::new(pts.point(i)[0], pts.point(i)[1]))
            .collect();
        let out = monotone_chain::hull_output(&raw);
        print_output(&out, None, None, None);
        return;
    }

    // The incremental algorithms want a random insertion order; translate
    // facet indices back to the input order via the permutation.
    let (prepared, perm) = prepare_points_with_perm(&pts, opts.seed);
    let (output, stats) = match opts.algo {
        Algo::Seq => {
            let run = incremental_hull_run(&prepared);
            (run.output, run.stats)
        }
        Algo::Par => {
            let run = parallel_hull(&prepared, ParOptions::default());
            (run.output, run.stats)
        }
        Algo::Rounds => {
            let run = rounds_hull(&prepared, false);
            (run.output, run.stats)
        }
        Algo::Chain => unreachable!(),
    };
    print_output(
        &output,
        opts.stats.then_some(&stats),
        opts.stats_json.then_some(&stats),
        Some(&perm),
    );
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(1);
}

fn serve_main(args: &[String]) {
    let mut opts = ServeOptions {
        addr: "127.0.0.1:4077".to_string(),
        ..Default::default()
    };
    let mut stats_json = false;
    let mut chaos_seed: Option<u64> = None;
    let mut it = args.iter();
    let next = |what: &str, it: &mut std::slice::Iter<String>| -> String {
        it.next()
            .unwrap_or_else(|| die(&format!("{what} needs a value")))
            .clone()
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => opts.addr = next("--addr", &mut it),
            "--dim" => {
                opts.config.dim = next("--dim", &mut it)
                    .parse()
                    .unwrap_or_else(|_| die("bad --dim value"));
            }
            "--shards" => {
                opts.config.shards = next("--shards", &mut it)
                    .parse()
                    .unwrap_or_else(|_| die("bad --shards value"));
            }
            "--queue-cap" => {
                opts.config.queue_capacity = next("--queue-cap", &mut it)
                    .parse()
                    .unwrap_or_else(|_| die("bad --queue-cap value"));
            }
            "--batch" => {
                opts.config.max_batch = next("--batch", &mut it)
                    .parse()
                    .unwrap_or_else(|_| die("bad --batch value"));
            }
            "--wal" => {
                opts.config.wal_dir = Some(std::path::PathBuf::from(next("--wal", &mut it)));
            }
            "--chaos-seed" => {
                chaos_seed = Some(
                    next("--chaos-seed", &mut it)
                        .parse()
                        .unwrap_or_else(|_| die("bad --chaos-seed value")),
                );
            }
            "--oneshot" => opts.oneshot = true,
            "--stats-json" => stats_json = true,
            "--help" | "-h" => usage(),
            other => die(&format!("unknown serve flag '{other}'")),
        }
    }
    if opts.config.dim < 2 || opts.config.dim > 8 {
        die("--dim must be in 2..=8");
    }
    if opts.config.shards == 0 || opts.config.shards > u16::MAX as usize {
        die("--shards must be in 1..=65535");
    }
    if let Some(seed) = chaos_seed {
        // Fault injection for resilience testing: replayable from the
        // seed alone. Workers will die and recover; clients see
        // `Degraded` replies during replay windows.
        convex_hull_suite::concurrent::failpoint::arm(
            convex_hull_suite::concurrent::failpoint::FaultPlan::chaos(seed),
        );
        eprintln!("hull: chaos schedule armed (seed {seed})");
    }
    let handle = serve(opts).unwrap_or_else(|e| die(&format!("bind failed: {e}")));
    // The resolved address goes to stderr so facet/stat stdout stays clean
    // and scripts with `--addr host:0` can learn the picked port.
    eprintln!("hull: listening on {}", handle.local_addr());
    let final_stats = handle.join_stats();
    if stats_json {
        println!("{final_stats}");
    }
}

fn parse_shard(tok: Option<&String>) -> u16 {
    tok.unwrap_or_else(|| die("missing shard id"))
        .parse()
        .unwrap_or_else(|_| die("bad shard id"))
}

fn parse_coords(toks: &[String]) -> Vec<i64> {
    if toks.is_empty() {
        die("missing coordinates");
    }
    toks.iter()
        .map(|t| {
            t.parse()
                .unwrap_or_else(|_| die(&format!("bad coordinate '{t}'")))
        })
        .collect()
}

/// Execute one query op (tokens: `OP [SHARD] [COORDS...]`) and render the
/// reply as a single stdout line.
fn run_query_op(client: &mut HullClient, toks: &[String]) -> std::io::Result<String> {
    let op = toks.first().map(String::as_str).unwrap_or_else(|| usage());
    Ok(match op {
        "insert" => {
            let shard = parse_shard(toks.get(1));
            if client.insert(shard, &parse_coords(&toks[2..]))? {
                "queued".to_string()
            } else {
                "overloaded".to_string()
            }
        }
        "contains" => {
            let shard = parse_shard(toks.get(1));
            match client.contains(shard, &parse_coords(&toks[2..]))? {
                Some(b) => b.to_string(),
                None => "not-ready".to_string(),
            }
        }
        "visible" => {
            let shard = parse_shard(toks.get(1));
            match client.visible(shard, &parse_coords(&toks[2..]))? {
                Some(n) => format!("visible {n}"),
                None => "not-ready".to_string(),
            }
        }
        "extreme" => {
            let shard = parse_shard(toks.get(1));
            match client.extreme(shard, &parse_coords(&toks[2..]))? {
                Some((v, coords)) => {
                    let c: Vec<String> = coords.iter().map(|x| x.to_string()).collect();
                    format!("extreme v={v} at {}", c.join(" "))
                }
                None => "not-ready".to_string(),
            }
        }
        "stats" => client.stats(toks.get(1).map(|t| parse_shard(Some(t))))?,
        "snapshot" => {
            let snap = client.snapshot(parse_shard(toks.get(1)))?;
            format!(
                "snapshot epoch={} points={} facets={}",
                snap.epoch,
                snap.points.len(),
                snap.facets.len()
            )
        }
        "flush" => format!("flushed epoch={}", client.flush(parse_shard(toks.get(1)))?),
        "shutdown" => {
            client.shutdown_server()?;
            "shutting-down".to_string()
        }
        other => die(&format!("unknown query op '{other}'")),
    })
}

fn query_main(args: &[String]) {
    if args.len() < 2 {
        usage();
    }
    let addr = &args[0];
    let mut client =
        HullClient::connect(addr).unwrap_or_else(|e| die(&format!("connect {addr}: {e}")));
    if args[1] == "script" {
        // One connection, one op per stdin line — the shape the oneshot CI
        // smoke test needs (the server exits when this connection closes).
        let mut input = String::new();
        std::io::stdin()
            .read_to_string(&mut input)
            .expect("reading stdin");
        for line in input.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let toks: Vec<String> = line.split_whitespace().map(str::to_string).collect();
            match run_query_op(&mut client, &toks) {
                Ok(reply) => println!("{reply}"),
                Err(e) => die(&format!("{line}: {e}")),
            }
        }
    } else {
        match run_query_op(&mut client, &args[1..]) {
            Ok(reply) => println!("{reply}"),
            Err(e) => die(&e.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parse_args_defaults_and_flags() {
        let o = parse_args(&s(&[])).unwrap();
        assert_eq!(o.dim, 2);
        assert_eq!(o.algo, Algo::Seq);
        let o = parse_args(&s(&[
            "--dim", "3", "--algo", "par", "--seed", "7", "--stats", "f.txt",
        ]))
        .unwrap();
        assert_eq!(o.dim, 3);
        assert_eq!(o.algo, Algo::Par);
        assert_eq!(o.seed, 7);
        assert!(o.stats);
        assert_eq!(o.file.as_deref(), Some("f.txt"));
    }

    #[test]
    fn parse_args_rejects_bad_input() {
        assert!(parse_args(&s(&["--dim"])).is_err());
        assert!(parse_args(&s(&["--dim", "1"])).is_err());
        assert!(parse_args(&s(&["--dim", "9"])).is_err());
        assert!(parse_args(&s(&["--algo", "magic"])).is_err());
        assert!(parse_args(&s(&["--bogus"])).is_err());
        assert!(parse_args(&s(&["a.txt", "b.txt"])).is_err());
        assert!(parse_args(&s(&["--dim", "3", "--algo", "chain"])).is_err());
        assert!(parse_args(&s(&["--algo", "chain", "--stats-json"])).is_err());
    }

    #[test]
    fn parse_args_stats_json() {
        let o = parse_args(&s(&["--stats-json"])).unwrap();
        assert!(o.stats_json);
        assert!(!o.stats);
    }

    #[test]
    fn parse_points_happy_path() {
        let ps = parse_points("0 0\n4 0\n# comment\n\n0 4\n4 4\n", 2).unwrap();
        assert_eq!(ps.len(), 4);
        assert_eq!(ps.point(2), &[0, 4]);
    }

    #[test]
    fn parse_points_errors() {
        assert!(parse_points("1 2 3\n", 2).is_err());
        assert!(parse_points("1 x\n2 3\n4 5\n6 7\n", 2).is_err());
        assert!(parse_points("1 2\n3 4\n", 2).is_err()); // too few
    }
}
