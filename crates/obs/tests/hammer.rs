//! N-thread hammer tests: after every writer joins, folded totals are
//! exact — the striped-counter contract carried over to histograms.

#![cfg(not(feature = "noop"))]

use chull_obs::{Counter, Histogram, HistogramSnapshot};
use std::sync::Arc;

const THREADS: u64 = 8;
const PER_THREAD: u64 = 50_000;

#[test]
fn counter_hammer_exact_total() {
    chull_obs::arm();
    let c = Arc::new(Counter::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let c = Arc::clone(&c);
            std::thread::spawn(move || {
                for i in 0..PER_THREAD {
                    // Mix incr and add so both paths are exercised.
                    if (t + i) % 2 == 0 {
                        c.incr();
                    } else {
                        c.add(3);
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    // Per thread: PER_THREAD/2 incrs + PER_THREAD/2 adds of 3.
    assert_eq!(c.get(), THREADS * (PER_THREAD / 2) * (1 + 3));
}

#[test]
fn histogram_hammer_exact_totals_and_buckets() {
    chull_obs::arm();
    let h = Arc::new(Histogram::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let h = Arc::clone(&h);
            std::thread::spawn(move || {
                for i in 0..PER_THREAD {
                    // Deterministic value mix, including both extremes.
                    let v = match i % 4 {
                        0 => 0,
                        1 => u64::MAX,
                        2 => t * 1000 + i,
                        _ => 1 << (i % 60),
                    };
                    h.record(v);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let snap = h.snapshot();
    assert_eq!(snap.count, THREADS * PER_THREAD);
    assert_eq!(snap.buckets.iter().sum::<u64>(), snap.count);
    assert_eq!(snap.buckets[0], THREADS * PER_THREAD / 4, "zeros");
    assert!(snap.buckets[64] >= THREADS * PER_THREAD / 4, "maxes");
    assert_eq!(snap.max, u64::MAX);

    // The exact sum must equal an independently computed (wrapping) sum.
    let mut expect = 0u64;
    for t in 0..THREADS {
        for i in 0..PER_THREAD {
            let v = match i % 4 {
                0 => 0,
                1 => u64::MAX,
                2 => t * 1000 + i,
                _ => 1 << (i % 60),
            };
            expect = expect.wrapping_add(v);
        }
    }
    assert_eq!(snap.sum, expect);
}

#[test]
fn snapshot_merge_matches_single_histogram() {
    chull_obs::arm();
    // Recording the same stream into one histogram, or into N and
    // merging, must agree bucket-for-bucket (shard-fold soundness).
    let whole = Histogram::new();
    let parts: Vec<Histogram> = (0..4).map(|_| Histogram::new()).collect();
    for i in 0..10_000u64 {
        let v = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        whole.record(v);
        parts[(i % 4) as usize].record(v);
    }
    let mut folded = HistogramSnapshot::default();
    for p in &parts {
        folded.merge(&p.snapshot());
    }
    assert_eq!(folded, whole.snapshot());
}
