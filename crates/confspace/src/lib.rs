//! # chull-confspace
//!
//! The theoretical framework of *Randomized Incremental Convex Hull is
//! Highly Parallel* (Blelloch, Gu, Shun, Sun — SPAA 2020), executable:
//!
//! * [`space`] — configuration spaces, support sets (Definition 3.2), and
//!   brute-force checkers for `k`-support (Definition 3.3);
//! * [`depgraph`] — the configuration dependence graph (Definition 4.1) and
//!   its depth statistics (the object of Theorems 1.1 / 4.2);
//! * [`clarkson_shor`] — the total conflict-size bound (Theorem 3.1);
//! * [`instances`] — concrete spaces: the 2D hull facet space (Section 5)
//!   and a 1-support toy space used to validate the generic machinery.
//!
//! The high-performance measurement paths for large `n` live in
//! `chull-core::instrument`; this crate is the *oracle* that those paths
//! are validated against on small inputs.

#![warn(missing_docs)]

pub mod clarkson_shor;
pub mod depgraph;
pub mod instances;
pub mod space;

pub use clarkson_shor::{clarkson_shor_report, ClarksonShorReport};
pub use depgraph::{build_dep_graph, DepGraphStats};
pub use space::{check_k_support_along_order, check_support, ConfigurationSpace, SupportCheck};
