//! Delaunay triangulation via the lifting map (a Section 7-style
//! application built on the 3D parallel hull).
//!
//! Run with: `cargo run --release --example delaunay_lifting`

use convex_hull_suite::apps::delaunay::{delaunay, verify_delaunay, Engine};
use convex_hull_suite::core::baseline::monotone_chain;
use convex_hull_suite::geometry::generators;

fn main() {
    let n = 2_000;
    let pts = generators::disk_2d(n, 1 << 20, 11);

    let seq = delaunay(&pts, Engine::Sequential, 3);
    let par = delaunay(&pts, Engine::Parallel, 3);
    assert_eq!(seq, par, "both engines produce the same triangulation");

    verify_delaunay(&pts, &seq).expect("empty-circumcircle property (exact incircle)");
    let hull_vertices = monotone_chain::hull_indices(&pts).len();
    println!("points:            {n}");
    println!("hull vertices:     {hull_vertices}");
    println!("Delaunay triangles:{}", seq.triangles.len());
    println!(
        "Euler check:       2n - h - 2 = {}",
        2 * n - hull_vertices - 2
    );
    assert_eq!(seq.triangles.len(), 2 * n - hull_vertices - 2);
    println!("verified: no point lies strictly inside any circumcircle.");
}
