//! Clarkson–Shor total conflict-size accounting (Theorem 3.1).
//!
//! For a random insertion order, Theorem 3.1 bounds the expected total
//! conflict size of all configurations ever created:
//!
//! ```text
//! E[ sum_{pi in T} |C(pi)| ]  <=  n * g^2 * sum_{i=1}^{n} E[|T(Y_i)|] / i^2
//! ```
//!
//! The E8 experiment measures the left side directly (it is exactly the
//! number of point-facet conflicts the incremental algorithm touches, i.e.
//! its work up to constants) and evaluates the right side with the measured
//! `|T(Y_i)|` as a proxy for the expectation, averaged over seeds.

use crate::depgraph::DepGraphStats;

/// Measured-vs-bound comparison for one run.
#[derive(Debug, Clone, PartialEq)]
pub struct ClarksonShorReport {
    /// Number of objects.
    pub n: usize,
    /// Measured `sum |C(pi)|` over all created configurations.
    pub measured_total_conflicts: usize,
    /// The right-hand side `n g^2 sum |T_i| / i^2` with measured `|T_i|`.
    pub bound: f64,
    /// `measured / bound` (should be <= ~1 on average over seeds).
    pub ratio: f64,
}

/// Evaluate the Theorem 3.1 bound from dependence-graph statistics.
///
/// `stats.active_sizes[j]` is `|T(Y_{nb + j})|`; sizes for `i < nb` are
/// taken as the base-size value (a constant that only slackens the bound).
pub fn clarkson_shor_report(stats: &DepGraphStats, g: usize, nb: usize) -> ClarksonShorReport {
    let n = stats.n;
    let mut bound = 0.0f64;
    for i in 1..=n {
        let t_i = if i < nb {
            *stats.active_sizes.first().unwrap_or(&1)
        } else {
            stats.active_sizes[(i - nb).min(stats.active_sizes.len() - 1)]
        };
        bound += t_i as f64 / (i as f64 * i as f64);
    }
    bound *= (n * g * g) as f64;
    let measured = stats.total_conflicts;
    ClarksonShorReport {
        n,
        measured_total_conflicts: measured,
        bound,
        ratio: measured as f64 / bound,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::depgraph::build_dep_graph;
    use crate::instances::hull2d::Hull2dSpace;
    use crate::instances::sorted_pairs::SortedPairsSpace;
    use crate::space::ConfigurationSpace;
    use chull_geometry::generators;

    #[test]
    fn bound_holds_for_sorted_pairs_random_order() {
        // |T_i| = i + 1 for this space, so the bound is ~ n g^2 H_n.
        let n = 512;
        let space = SortedPairsSpace::new(n);
        let mut ratios = Vec::new();
        for seed in 0..5 {
            let order = generators::random_permutation(n, seed);
            let stats = build_dep_graph(&space, &order, false);
            let report = clarkson_shor_report(&stats, space.max_degree(), space.base_size());
            assert!(report.bound > 0.0);
            ratios.push(report.ratio);
        }
        let mean: f64 = ratios.iter().sum::<f64>() / ratios.len() as f64;
        assert!(mean <= 1.0, "mean measured/bound ratio {mean} exceeds 1");
    }

    #[test]
    fn bound_holds_for_hull2d_random_order() {
        let n = 96;
        let pts = generators::disk_2d(n, 1 << 20, 21);
        let space = Hull2dSpace::new(pts);
        let mut ratios = Vec::new();
        for seed in 0..4 {
            let order = generators::random_permutation(n, seed + 50);
            let stats = build_dep_graph(&space, &order, false);
            let report = clarkson_shor_report(&stats, space.max_degree(), space.base_size());
            ratios.push(report.ratio);
        }
        let mean: f64 = ratios.iter().sum::<f64>() / ratios.len() as f64;
        assert!(mean <= 1.0, "mean measured/bound ratio {mean} exceeds 1");
    }
}
