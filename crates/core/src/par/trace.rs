//! Replay traces of `ProcessRidge` actions, used to reproduce the paper's
//! Figure 1 walkthrough (experiment E4).

use crate::facet::{FacetVerts, MAX_DIM, NO_VERT};

/// One `ProcessRidge` action.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// Line 9: both conflict sets empty; the ridge and its facets are final.
    Finalize {
        /// First facet's vertices.
        t1: Vec<u32>,
        /// Second facet's vertices.
        t2: Vec<u32>,
        /// Recursion depth of the call.
        depth: u64,
    },
    /// Line 10: both facets share the conflict pivot, which buries them.
    Bury {
        /// First facet's vertices.
        t1: Vec<u32>,
        /// Second facet's vertices.
        t2: Vec<u32>,
        /// The burying point.
        pivot: u32,
        /// Recursion depth of the call.
        depth: u64,
    },
    /// Lines 14-17: the new facet `new` replaces `old` (joined with `pivot`).
    Replace {
        /// The replaced facet's vertices.
        old: Vec<u32>,
        /// The created facet's vertices.
        new: Vec<u32>,
        /// The inserted point.
        pivot: u32,
        /// Recursion depth of the call.
        depth: u64,
    },
}

fn verts_vec(dim: usize, v: &FacetVerts) -> Vec<u32> {
    debug_assert!(dim <= MAX_DIM && v[..dim].iter().all(|&x| x != NO_VERT));
    v[..dim].to_vec()
}

impl TraceEvent {
    pub(crate) fn finalize(dim: usize, t1: &FacetVerts, t2: &FacetVerts, depth: u64) -> TraceEvent {
        TraceEvent::Finalize {
            t1: verts_vec(dim, t1),
            t2: verts_vec(dim, t2),
            depth,
        }
    }

    pub(crate) fn bury(
        dim: usize,
        t1: &FacetVerts,
        t2: &FacetVerts,
        pivot: u32,
        depth: u64,
    ) -> TraceEvent {
        TraceEvent::Bury {
            t1: verts_vec(dim, t1),
            t2: verts_vec(dim, t2),
            pivot,
            depth,
        }
    }

    pub(crate) fn replace(
        dim: usize,
        old: &FacetVerts,
        new: &FacetVerts,
        pivot: u32,
        depth: u64,
    ) -> TraceEvent {
        TraceEvent::Replace {
            old: verts_vec(dim, old),
            new: verts_vec(dim, new),
            pivot,
            depth,
        }
    }

    /// The recursion depth the event occurred at.
    pub fn depth(&self) -> u64 {
        match self {
            TraceEvent::Finalize { depth, .. }
            | TraceEvent::Bury { depth, .. }
            | TraceEvent::Replace { depth, .. } => *depth,
        }
    }

    /// Render with point names (e.g. Figure 1's `u, v, w, ...`): an edge
    /// `{1, 3}` becomes `v-x`.
    pub fn render(&self, names: &[&str]) -> String {
        let f = |vs: &Vec<u32>| {
            vs.iter()
                .map(|&v| names[v as usize])
                .collect::<Vec<_>>()
                .join("-")
        };
        match self {
            TraceEvent::Finalize { t1, t2, .. } => format!("finalize {} | {}", f(t1), f(t2)),
            TraceEvent::Bury { t1, t2, pivot, .. } => {
                format!("{} buries {} and {}", names[*pivot as usize], f(t1), f(t2))
            }
            TraceEvent::Replace {
                old, new, pivot, ..
            } => {
                format!(
                    "{} replaces {} (pivot {})",
                    f(new),
                    f(old),
                    names[*pivot as usize]
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::facet::facet_verts;

    #[test]
    fn render_uses_names() {
        let e = TraceEvent::replace(2, &facet_verts(&[0, 1]), &facet_verts(&[1, 2]), 2, 3);
        assert_eq!(e.render(&["u", "v", "c"]), "v-c replaces u-v (pivot c)");
        assert_eq!(e.depth(), 3);
        let b = TraceEvent::bury(2, &facet_verts(&[0, 1]), &facet_verts(&[1, 2]), 2, 1);
        assert_eq!(b.render(&["u", "v", "c"]), "c buries u-v and v-c");
    }
}
