//! Exact measure (area / volume) of computed hulls.
//!
//! For a convex polytope, the hull is star-shaped from any of its points,
//! so `d! · volume = Σ_facets |det(v_1 - o, ..., v_d - o)|` for a fixed
//! hull vertex `o` (facets containing `o` contribute zero). Computed in
//! exact big-integer arithmetic — the returned value is `d!` times the
//! volume, which is always an integer for lattice inputs.

use crate::output::HullOutput;
use chull_geometry::exact::{det_i64, BigInt, Sign};
use chull_geometry::PointSet;

/// `d! ·` (d-dimensional volume of the hull), exactly.
pub fn hull_measure_times_d_factorial(pts: &PointSet, hull: &HullOutput) -> BigInt {
    let dim = hull.dim;
    assert_eq!(dim, pts.dim());
    assert!(!hull.facets.is_empty(), "empty hull");
    let o = hull.facets[0][0]; // any hull vertex
    let o_coords = pts.pt(o).to_vec();
    let mut total = BigInt::zero();
    for f in &hull.facets {
        if f[..dim].contains(&o) {
            continue;
        }
        let rows: Vec<Vec<i64>> = (0..dim)
            .map(|i| {
                pts.pt(f[i])
                    .iter()
                    .zip(&o_coords)
                    .map(|(&a, &b)| a - b)
                    .collect()
            })
            .collect();
        let mut det = det_i64(&rows);
        if det.sign() == Sign::Negative {
            det.negate();
        }
        total = total.add(&det);
    }
    total
}

/// The hull's measure as an `f64` (lossy; for display).
pub fn hull_measure(pts: &PointSet, hull: &HullOutput) -> f64 {
    let factorial: f64 = (1..=hull.dim as u64).product::<u64>() as f64;
    hull_measure_times_d_factorial(pts, hull).to_f64() / factorial
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::prepare_points;
    use crate::seq::incremental_hull_run;
    use chull_geometry::generators;

    #[test]
    fn square_area() {
        let pts = PointSet::from_rows(
            2,
            &[
                vec![0, 0],
                vec![40, 0],
                vec![0, 40],
                vec![40, 40],
                vec![11, 13],
            ],
        );
        let run = incremental_hull_run(&pts);
        assert_eq!(
            hull_measure_times_d_factorial(&pts, &run.output),
            BigInt::from(2 * 40 * 40i64)
        );
        assert!((hull_measure(&pts, &run.output) - 1600.0).abs() < 1e-9);
    }

    #[test]
    fn cube_volume() {
        let mut rows = Vec::new();
        for mask in 0..8u32 {
            rows.push(vec![
                if mask & 1 != 0 { 10 } else { 0 },
                if mask & 2 != 0 { 10 } else { 0 },
                if mask & 4 != 0 { 10 } else { 0 },
            ]);
        }
        rows.push(vec![5, 5, 5]);
        let pts = prepare_points(&PointSet::from_rows(3, &rows), 1);
        let run = incremental_hull_run(&pts);
        assert_eq!(
            hull_measure_times_d_factorial(&pts, &run.output),
            BigInt::from(6 * 1000i64)
        );
    }

    #[test]
    fn simplex_4d_volume() {
        // Standard scaled simplex: volume = s^d / d!.
        let s = 12i64;
        let mut rows = vec![vec![0i64; 4]];
        for i in 0..4 {
            let mut r = vec![0i64; 4];
            r[i] = s;
            rows.push(r);
        }
        let pts = PointSet::from_rows(4, &rows);
        let run = incremental_hull_run(&pts);
        assert_eq!(
            hull_measure_times_d_factorial(&pts, &run.output),
            BigInt::from(s * s * s * s)
        );
    }

    #[test]
    fn measure_is_algorithm_invariant_and_monotone() {
        use crate::par::{parallel_hull, ParOptions};
        let small = generators::disk_2d(100, 1 << 16, 3);
        let mut big = small.clone();
        big.extend(generators::disk_2d(100, 1 << 17, 4)); // wider cloud
        let ps_small = prepare_points(&PointSet::from_points2(&small), 1);
        let ps_big = prepare_points(&PointSet::from_points2(&big), 2);
        let seq_small = incremental_hull_run(&ps_small);
        let par_small = parallel_hull(&ps_small, ParOptions::default());
        let m_seq = hull_measure_times_d_factorial(&ps_small, &seq_small.output);
        let m_par = hull_measure_times_d_factorial(&ps_small, &par_small.output);
        assert_eq!(m_seq, m_par);
        let seq_big = incremental_hull_run(&ps_big);
        let m_big = hull_measure_times_d_factorial(&ps_big, &seq_big.output);
        assert!(m_big > m_seq, "hull of a superset must not shrink");
    }
}
