//! Concurrency stress: run Algorithm 3 on oversubscribed rayon pools so the
//! lock-free ridge multimaps, the facet arena, and the `ProcessRidge`
//! spawning discipline are exercised under real thread interleaving —
//! results must stay identical to the sequential run for every engine and
//! thread count.

use convex_hull_suite::core::par::{parallel_hull_with_threads, MapKind, ParOptions};
use convex_hull_suite::core::prepare_points;
use convex_hull_suite::core::seq::incremental_hull_run;
use convex_hull_suite::geometry::{generators, PointSet};

fn stress(pts: &PointSet, kind: MapKind, threads: usize) {
    let seq = incremental_hull_run(pts);
    let par = parallel_hull_with_threads(
        pts,
        ParOptions {
            map: kind,
            record_trace: false,
        },
        threads,
    );
    assert_eq!(
        seq.output.canonical(),
        par.output.canonical(),
        "{kind:?} with {threads} threads"
    );
    assert_eq!(seq.stats.visibility_tests, par.stats.visibility_tests);
    let mut a = seq.created.clone();
    let mut b = par.created.clone();
    a.sort_unstable();
    b.sort_unstable();
    assert_eq!(
        a, b,
        "{kind:?} with {threads} threads: created facet sets differ"
    );
}

#[test]
fn oversubscribed_pools_2d() {
    let pts = prepare_points(
        &PointSet::from_points2(&generators::disk_2d(3000, 1 << 24, 1)),
        2,
    );
    for threads in [2usize, 4, 8] {
        stress(&pts, MapKind::Locked, threads);
        stress(
            &pts,
            MapKind::Cas {
                capacity_factor: 16,
            },
            threads,
        );
        stress(
            &pts,
            MapKind::Tas {
                capacity_factor: 16,
            },
            threads,
        );
    }
}

#[test]
fn oversubscribed_pools_3d_sphere() {
    // Near-sphere: Theta(n) facets — maximal concurrency pressure on the
    // map and arena.
    let pts = prepare_points(
        &PointSet::from_points3(&generators::near_sphere_3d(800, 1 << 24, 3)),
        4,
    );
    for threads in [4usize, 8] {
        stress(&pts, MapKind::Locked, threads);
        stress(
            &pts,
            MapKind::Cas {
                capacity_factor: 32,
            },
            threads,
        );
        stress(
            &pts,
            MapKind::Tas {
                capacity_factor: 32,
            },
            threads,
        );
    }
}

#[test]
fn repeated_runs_are_deterministic_in_output() {
    // The schedule is nondeterministic; the hull must not be.
    let pts = prepare_points(
        &PointSet::from_points3(&generators::ball_3d(1200, 1 << 24, 5)),
        6,
    );
    let reference = parallel_hull_with_threads(&pts, ParOptions::default(), 4);
    for _ in 0..5 {
        let run = parallel_hull_with_threads(&pts, ParOptions::default(), 4);
        assert_eq!(reference.output.canonical(), run.output.canonical());
        assert_eq!(reference.stats.visibility_tests, run.stats.visibility_tests);
    }
}

#[test]
fn degenerate_grids_parallel_matches_sequential() {
    // Grids have massive interior degeneracy and collinear/coplanar hull
    // boundaries. The weak (non-strict) hull the incremental algorithms
    // produce must at least agree between Algorithm 2 and Algorithm 3 and
    // verify geometrically.
    use convex_hull_suite::core::verify::verify_hull;
    let g2 = PointSet::from_points2(&generators::grid_2d(12, 7));
    let g2 = prepare_points(&g2, 8);
    let seq = incremental_hull_run(&g2);
    let par = parallel_hull_with_threads(&g2, ParOptions::default(), 4);
    assert_eq!(seq.output.canonical(), par.output.canonical());
    verify_hull(&g2, &seq.output).unwrap();

    let g3 = PointSet::from_points3(&generators::grid_3d(5, 9));
    let g3 = prepare_points(&g3, 10);
    let seq = incremental_hull_run(&g3);
    let par = parallel_hull_with_threads(&g3, ParOptions::default(), 4);
    assert_eq!(seq.output.canonical(), par.output.canonical());
}
