//! Application benchmarks: Delaunay via lifting, half-plane intersection,
//! circle intersection.

use chull_apps::circles::{incremental_intersection, random_circles};
use chull_apps::delaunay::{delaunay, Engine};
use chull_apps::halfspace::{intersection_via_duality, random_halfplanes};
use chull_bench::harness::Bench;
use chull_geometry::generators;

fn main() {
    let mut b = Bench::new().samples(5).target_sample_time(0.2);

    let pts = generators::disk_2d(5_000, 1 << 20, 3);
    b.bench(&format!("apps/delaunay_lifting_seq/{}", pts.len()), || {
        delaunay(&pts, Engine::Sequential, 1)
    });
    b.bench(&format!("apps/delaunay_lifting_par/{}", pts.len()), || {
        delaunay(&pts, Engine::Parallel, 1)
    });

    let hs = random_halfplanes(2_000, 4);
    b.bench(&format!("apps/halfplanes_duality/{}", hs.len()), || {
        intersection_via_duality(&hs)
    });

    let circles = random_circles(2_000, 0.45, 5);
    b.bench(
        &format!("apps/circle_intersection/{}", circles.len()),
        || incremental_intersection(&circles),
    );

    b.report();
}
