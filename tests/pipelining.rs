//! Protocol v4 pipelining: many tagged requests in flight on one
//! connection, replies correlated by id (possibly out of order), and
//! the served hull bit-identical to the same workload issued
//! sequentially.
//!
//! What is pinned down here (DESIGN §S19):
//!
//! * **correlation** — `HullClient::pipeline` sends N tagged frames
//!   back-to-back before reading anything; every reply carries the id
//!   of its request, and the restored pairing must answer exactly like
//!   the same requests issued one at a time against the same state
//!   (byte-identical reply encodings for read-only ops);
//! * **ordering freedom without hull divergence** — tagged inserts may
//!   be applied in any order across the dispatcher pool, so the hull is
//!   compared as a canonical facet-coordinate set against a sequential
//!   twin server (order-independence is Theorem 4.2 of the paper, the
//!   same property the chaos harness leans on);
//! * **depth beyond the in-flight cap** — a pipeline much deeper than
//!   the server's per-connection tagged concurrency limit (64) parks
//!   frames and still answers every one exactly once;
//! * **version coexistence** — v1 (no handshake), v2, v3, and v4
//!   clients share one event-loop server; pipelining on a connection
//!   that did not negotiate v4+`CAP_PIPELINE` is refused client-side.
//!
//! Everything runs against both front ends (epoll event loop and the
//! threaded oracle) except the mixed-version test, which targets the
//! event loop — the back end that actually multiplexes.

use convex_hull_suite::core::seq::incremental_hull_run;
use convex_hull_suite::geometry::{generators, PointSet};
use convex_hull_suite::service::wire::{
    Request, Response, CAP_PIPELINE, PROTOCOL_V1, PROTOCOL_V2, PROTOCOL_V3, PROTOCOL_V4,
};
use convex_hull_suite::service::{
    serve, HullClient, MutationBatch, ServeOptions, ServerHandle, ServiceConfig,
};
use std::collections::BTreeSet;

fn server(threaded: bool) -> ServerHandle {
    serve(ServeOptions {
        config: ServiceConfig {
            dim: 2,
            shards: 2,
            queue_capacity: 1024,
            max_batch: 32,
            workers: 2,
            wal_dir: None,
            bulk_threshold: 0,
            ..Default::default()
        },
        threaded,
        ..Default::default()
    })
    .unwrap()
}

fn client(addr: std::net::SocketAddr) -> HullClient {
    HullClient::builder(addr.to_string()).connect().unwrap()
}

/// A hull as an order-free set of facets, each the sorted list of its
/// vertices' coordinates (vertex ids depend on insertion order, which
/// pipelining deliberately scrambles; coordinates cannot).
fn canonical_facets(snap: &convex_hull_suite::service::SnapshotReply) -> BTreeSet<Vec<Vec<i64>>> {
    snap.facets
        .iter()
        .map(|f| {
            let mut rows: Vec<Vec<i64>> =
                f.iter().map(|&v| snap.points[v as usize].clone()).collect();
            rows.sort();
            rows
        })
        .collect()
}

fn canonical_offline(pts: &PointSet) -> BTreeSet<Vec<Vec<i64>>> {
    let run = incremental_hull_run(pts);
    let dim = pts.dim();
    run.output
        .facets
        .iter()
        .map(|f| {
            let mut rows: Vec<Vec<i64>> = f[..dim]
                .iter()
                .map(|&v| pts.point(v as usize).to_vec())
                .collect();
            rows.sort();
            rows
        })
        .collect()
}

#[test]
fn pipelined_inserts_and_queries_match_sequential_twin() {
    for threaded in [false, true] {
        pipelined_vs_sequential(threaded);
    }
}

fn pipelined_vs_sequential(threaded: bool) {
    let n = 200;
    let pts = generators::ball_d(2, n, 1_000_000, 7);
    let rows: Vec<Vec<i64>> = (0..n).map(|i| pts.point(i).to_vec()).collect();

    // Pipelined server: interleaved Insert frames across both shards,
    // 100 tagged requests per burst.
    let mut piped = server(threaded);
    let mut pc = client(piped.local_addr());
    assert!(pc.negotiated_version() >= PROTOCOL_V4);
    assert_ne!(pc.caps() & CAP_PIPELINE, 0);
    for chunk in rows.chunks(100) {
        let reqs: Vec<Request> = chunk
            .iter()
            .enumerate()
            .map(|(i, p)| Request::Insert {
                shard: (i % 2) as u16,
                point: p.clone(),
            })
            .collect();
        for resp in pc.pipeline(&reqs).unwrap() {
            assert!(
                matches!(resp, Response::Inserted),
                "pipelined insert: {resp:?}"
            );
        }
    }
    for resp in pc
        .pipeline(&[Request::Flush { shard: 0 }, Request::Flush { shard: 1 }])
        .unwrap()
    {
        assert!(matches!(resp, Response::Flushed { .. }), "{resp:?}");
    }

    // Sequential twin: identical rows, identical shard split, one
    // request at a time.
    let mut seq = server(threaded);
    let mut sc = client(seq.local_addr());
    for chunk in rows.chunks(100) {
        for (i, p) in chunk.iter().enumerate() {
            sc.mutate((i % 2) as u16, MutationBatch::new().insert(p.clone()))
                .unwrap();
        }
    }
    sc.flush(0).unwrap();
    sc.flush(1).unwrap();

    // The hulls agree facet-for-facet with each other and the offline
    // Algorithm 2, per shard.
    for shard in 0..2u16 {
        let a = pc.snapshot(shard).unwrap();
        let b = sc.snapshot(shard).unwrap();
        assert_eq!(a.points.len(), b.points.len(), "shard {shard}");
        assert_eq!(
            canonical_facets(&a),
            canonical_facets(&b),
            "shard {shard}: pipelined hull != sequential hull (threaded={threaded})"
        );
        let shard_rows: Vec<Vec<i64>> = rows
            .chunks(100)
            .flat_map(|c| {
                c.iter()
                    .enumerate()
                    .filter(|(i, _)| (i % 2) as u16 == shard)
                    .map(|(_, p)| p.clone())
            })
            .collect();
        let mut sub = PointSet::new(2);
        for r in &shard_rows {
            sub.push(r);
        }
        assert_eq!(
            canonical_facets(&a),
            canonical_offline(&sub),
            "shard {shard}: served hull != offline Algorithm 2 (threaded={threaded})"
        );
    }

    // Read-only queries on the frozen state: the pipelined replies must
    // be byte-identical to the same requests issued sequentially on the
    // same connection.
    let queries: Vec<Request> = (0..40)
        .flat_map(|i| {
            let p = pts.point(i * 3 % n).to_vec();
            vec![
                Request::Contains {
                    shard: (i % 2) as u16,
                    point: p.clone(),
                },
                Request::Visible {
                    shard: (i % 2) as u16,
                    point: p,
                },
            ]
        })
        .collect();
    let piped_replies = pc.pipeline(&queries).unwrap();
    for (req, piped_reply) in queries.iter().zip(&piped_replies) {
        let seq_reply = pc.raw(req).unwrap();
        assert_eq!(
            piped_reply.encode(),
            seq_reply.encode(),
            "reply divergence for {req:?} (threaded={threaded})"
        );
    }

    piped.shutdown();
    seq.shutdown();
}

/// A pipeline several times deeper than the server's per-connection
/// tagged in-flight cap (64): the surplus parks, everything answers
/// exactly once, and correlation holds at depth.
#[test]
fn pipeline_deeper_than_inflight_cap_answers_every_request() {
    for threaded in [false, true] {
        let mut srv = server(threaded);
        let mut c = client(srv.local_addr());
        for p in [[0, 0], [40, 0], [0, 40], [40, 40]] {
            c.mutate(0, MutationBatch::new().insert(p)).unwrap();
        }
        c.flush(0).unwrap();
        let depth = 512;
        let reqs: Vec<Request> = (0..depth)
            .map(|i| Request::Contains {
                shard: 0,
                point: vec![(i % 80) as i64 - 20, (i / 8) as i64 % 60],
            })
            .collect();
        let replies = c.pipeline(&reqs).unwrap();
        assert_eq!(replies.len(), depth);
        for (req, reply) in reqs.iter().zip(&replies) {
            let expect = c.raw(req).unwrap();
            assert_eq!(
                reply.encode(),
                expect.encode(),
                "depth-{depth} pipeline diverged on {req:?} (threaded={threaded})"
            );
        }
        srv.shutdown();
    }
}

/// One event-loop server, four protocol generations at once. Each
/// client speaks its own dialect; answers agree; pipelining is refused
/// on connections that did not negotiate it.
#[test]
// Deliberately drives the deprecated pre-v6 insert shims: each pinned
// client must keep speaking its own dialect through them.
#[allow(deprecated)]
fn mixed_version_clients_share_one_event_loop_server() {
    let mut srv = server(false);
    let addr = srv.local_addr().to_string();
    let mut v1 = HullClient::builder(&addr)
        .protocol_ceiling(PROTOCOL_V1)
        .connect()
        .unwrap();
    let mut v2 = HullClient::builder(&addr)
        .protocol_ceiling(PROTOCOL_V2)
        .connect()
        .unwrap();
    let mut v3 = HullClient::builder(&addr)
        .protocol_ceiling(PROTOCOL_V3)
        .connect()
        .unwrap();
    let mut v4 = HullClient::builder(&addr)
        .protocol_ceiling(PROTOCOL_V4)
        .connect()
        .unwrap();
    assert_eq!(v1.negotiated_version(), PROTOCOL_V1);
    assert_eq!(v2.negotiated_version(), PROTOCOL_V2);
    assert_eq!(v3.negotiated_version(), PROTOCOL_V3);
    assert_eq!(v4.negotiated_version(), PROTOCOL_V4);

    // Ingest through every dialect: v1 per-point, v2 batch frame, v3
    // per-point, v4 pipelined.
    v1.insert(0, &[0, 0]).unwrap();
    v2.insert_batch(0, &[vec![30, 0], vec![0, 30]]).unwrap();
    v3.insert(0, &[30, 30]).unwrap();
    for resp in v4
        .pipeline(&[
            Request::Insert {
                shard: 0,
                point: vec![15, 35],
            },
            Request::Flush { shard: 0 },
        ])
        .unwrap()
    {
        assert!(
            !matches!(resp, Response::Error(_)),
            "v4 pipeline failed: {resp:?}"
        );
    }
    v4.flush(0).unwrap();

    // All four observe the same hull.
    for q in [[5, 5], [29, 29], [40, 40], [15, 34]] {
        let expect = v4.contains(0, &q).unwrap();
        assert_eq!(v1.contains(0, &q).unwrap(), expect, "v1 at {q:?}");
        assert_eq!(v2.contains(0, &q).unwrap(), expect, "v2 at {q:?}");
        assert_eq!(v3.contains(0, &q).unwrap(), expect, "v3 at {q:?}");
        // v3 can also cross-check via the scan oracle.
        assert_eq!(v3.contains_scan(0, &q).unwrap(), expect, "v3 scan at {q:?}");
    }

    // Pipelining needs the v4 handshake: the v3 connection refuses
    // client-side without putting garbage on the wire.
    let err = v3
        .pipeline(&[Request::Flush { shard: 0 }])
        .expect_err("v3 connection must not pipeline");
    assert_eq!(err.kind(), std::io::ErrorKind::Unsupported);

    srv.shutdown();
}
