//! Hand-rolled Linux syscall bindings for the reactor: `epoll(7)`,
//! `eventfd(2)` and `setrlimit(2)`, declared directly against the C
//! runtime the way the repo hand-rolled its RNG, pool and hasher — no
//! `libc` crate, no build script. Every symbol used here is exported by
//! glibc/musl, which Rust's `std` already links on Linux.
//!
//! Only compiled on Linux; the portable [`crate::poller`] fallback uses
//! `poll(2)`, declared in the same spirit below under `cfg(unix)`.

#![allow(non_camel_case_types)]
// The constants and thin syscall shims below mirror the C API 1:1; the
// module doc covers them, per-item docs would just repeat `man 7 epoll`.
#![allow(missing_docs)]

use std::io;

pub type c_int = i32;

/// One epoll readiness record. The kernel ABI packs this struct on
/// x86-64 (`EPOLL_PACKED` in the kernel headers), so the Rust mirror
/// must too or `epoll_wait` would scribble past field boundaries.
#[cfg(target_arch = "x86_64")]
#[repr(C, packed)]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    pub events: u32,
    pub u64: u64,
}

#[cfg(not(target_arch = "x86_64"))]
#[repr(C)]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    pub events: u32,
    pub u64: u64,
}

pub const EPOLLIN: u32 = 0x001;
pub const EPOLLOUT: u32 = 0x004;
pub const EPOLLERR: u32 = 0x008;
pub const EPOLLHUP: u32 = 0x010;
pub const EPOLLRDHUP: u32 = 0x2000;

pub const EPOLL_CTL_ADD: c_int = 1;
pub const EPOLL_CTL_DEL: c_int = 2;
pub const EPOLL_CTL_MOD: c_int = 3;
pub const EPOLL_CLOEXEC: c_int = 0x80000;

pub const EFD_CLOEXEC: c_int = 0x80000;
pub const EFD_NONBLOCK: c_int = 0x800;

#[cfg(target_os = "linux")]
extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn eventfd(initval: u32, flags: c_int) -> c_int;
}

#[cfg(unix)]
extern "C" {
    fn close(fd: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut u8, count: usize) -> isize;
    fn write(fd: c_int, buf: *const u8, count: usize) -> isize;
    fn poll(fds: *mut PollFd, nfds: u64, timeout: c_int) -> c_int;
    fn getrlimit(resource: c_int, rlim: *mut Rlimit) -> c_int;
    fn setrlimit(resource: c_int, rlim: *const Rlimit) -> c_int;
}

/// `struct pollfd` for the portable fallback poller.
#[repr(C)]
#[derive(Clone, Copy)]
pub struct PollFd {
    pub fd: c_int,
    pub events: i16,
    pub revents: i16,
}

pub const POLLIN: i16 = 0x001;
pub const POLLOUT: i16 = 0x004;
pub const POLLERR: i16 = 0x008;
pub const POLLHUP: i16 = 0x010;

#[repr(C)]
#[derive(Clone, Copy)]
struct Rlimit {
    cur: u64,
    max: u64,
}

const RLIMIT_NOFILE: c_int = 7;

fn cvt(ret: c_int) -> io::Result<c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// RAII wrapper closing a raw descriptor on drop (epoll instance,
/// eventfd). Sockets stay owned by their `std` types.
pub struct OwnedRawFd(pub c_int);

impl Drop for OwnedRawFd {
    fn drop(&mut self) {
        unsafe {
            close(self.0);
        }
    }
}

#[cfg(target_os = "linux")]
pub fn sys_epoll_create() -> io::Result<OwnedRawFd> {
    let fd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
    Ok(OwnedRawFd(fd))
}

#[cfg(target_os = "linux")]
pub fn sys_epoll_ctl(epfd: c_int, op: c_int, fd: c_int, events: u32, data: u64) -> io::Result<()> {
    let mut ev = EpollEvent { events, u64: data };
    cvt(unsafe { epoll_ctl(epfd, op, fd, &mut ev) }).map(|_| ())
}

#[cfg(target_os = "linux")]
pub fn sys_epoll_wait(
    epfd: c_int,
    events: &mut [EpollEvent],
    timeout_ms: c_int,
) -> io::Result<usize> {
    let n =
        cvt(unsafe { epoll_wait(epfd, events.as_mut_ptr(), events.len() as c_int, timeout_ms) })?;
    Ok(n as usize)
}

#[cfg(target_os = "linux")]
pub fn sys_eventfd() -> io::Result<OwnedRawFd> {
    let fd = cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })?;
    Ok(OwnedRawFd(fd))
}

/// Non-blocking read of the full 8-byte eventfd counter (drains it).
pub fn sys_drain_eventfd(fd: c_int) {
    let mut buf = [0u8; 8];
    unsafe {
        let _ = read(fd, buf.as_mut_ptr(), 8);
    }
}

/// Add 1 to an eventfd counter; wakes any poller watching it. Writes to
/// an eventfd are async-signal-safe and never block below `u64::MAX`.
pub fn sys_signal_eventfd(fd: c_int) -> io::Result<()> {
    let one = 1u64.to_ne_bytes();
    let n = unsafe { write(fd, one.as_ptr(), 8) };
    if n == 8 {
        Ok(())
    } else {
        Err(io::Error::last_os_error())
    }
}

pub fn sys_poll(fds: &mut [PollFd], timeout_ms: c_int) -> io::Result<usize> {
    let n = cvt(unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, timeout_ms) })?;
    Ok(n as usize)
}

// ---------------------------------------------------------------------
// Termination signals (`signal(2)`), declared in the same no-`libc`
// spirit. The only work a handler may do is async-signal-safe; writing
// to an eventfd is (atomics too), so the handler just bumps a
// process-global eventfd that a normal watcher thread polls — the
// self-pipe trick with one fd.

pub const SIGINT: c_int = 2;
pub const SIGTERM: c_int = 15;

/// `SIG_ERR` — `signal(2)`'s failure sentinel (`(void (*)(int)) -1`).
const SIG_ERR: usize = usize::MAX;

#[cfg(unix)]
extern "C" {
    fn signal(signum: c_int, handler: usize) -> usize;
}

/// Install `handler` for `signum` via `signal(2)`. On Linux glibc/musl
/// this is the BSD semantic (the handler stays installed and syscalls
/// restart), which is all the graceful-shutdown path needs.
pub fn sys_signal(signum: c_int, handler: extern "C" fn(c_int)) -> io::Result<()> {
    let prev = unsafe { signal(signum, handler as usize) };
    if prev == SIG_ERR {
        Err(io::Error::last_os_error())
    } else {
        Ok(())
    }
}

#[cfg(target_os = "linux")]
static TERM_EVENTFD: std::sync::atomic::AtomicI32 = std::sync::atomic::AtomicI32::new(-1);

#[cfg(target_os = "linux")]
extern "C" fn term_handler(_signum: c_int) {
    // Async-signal-safe: one atomic load + one write(2).
    let fd = TERM_EVENTFD.load(std::sync::atomic::Ordering::Relaxed);
    if fd >= 0 {
        let _ = sys_signal_eventfd(fd);
    }
}

/// Bind `SIGTERM` and `SIGINT` to an eventfd: the returned descriptor
/// becomes readable (`POLLIN` via [`sys_poll`]) once either signal
/// arrives, so a watcher thread can run an orderly shutdown — seal the
/// WAL tail, drain connections — instead of the process dying
/// mid-write. Call once; the eventfd must outlive the process's use of
/// the handlers (keep the guard alive for the program's lifetime).
#[cfg(target_os = "linux")]
pub fn sys_termination_eventfd() -> io::Result<OwnedRawFd> {
    let efd = sys_eventfd()?;
    TERM_EVENTFD.store(efd.0, std::sync::atomic::Ordering::SeqCst);
    sys_signal(SIGTERM, term_handler)?;
    sys_signal(SIGINT, term_handler)?;
    Ok(efd)
}

/// Raise the soft `RLIMIT_NOFILE` to at least `want` descriptors (the
/// hard limit too when the process may — root can). Returns the soft
/// limit in effect afterwards; never errors harder than "left as-is",
/// so callers clamp their fan-in to the returned value.
pub fn raise_nofile_limit(want: u64) -> u64 {
    let mut lim = Rlimit { cur: 0, max: 0 };
    if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } != 0 {
        return 1024;
    }
    if lim.cur >= want {
        return lim.cur;
    }
    // First try within the current hard limit, then try raising the
    // hard limit too (succeeds when privileged).
    let tries = [
        Rlimit {
            cur: want.min(lim.max),
            max: lim.max,
        },
        Rlimit {
            cur: want,
            max: want.max(lim.max),
        },
    ];
    let mut best = lim.cur;
    for t in tries {
        if unsafe { setrlimit(RLIMIT_NOFILE, &t) } == 0 {
            best = best.max(t.cur);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nofile_limit_reports_something_sane() {
        let got = raise_nofile_limit(64);
        assert!(got >= 64, "soft NOFILE limit {got} below floor");
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn termination_eventfd_wakes_on_sigterm() {
        extern "C" {
            fn raise(sig: c_int) -> c_int;
        }
        let efd = sys_termination_eventfd().unwrap();
        // The installed handler absorbs the signal and bumps the
        // eventfd — the process (this test runner) lives on.
        unsafe { raise(SIGTERM) };
        let mut fds = [PollFd {
            fd: efd.0,
            events: POLLIN,
            revents: 0,
        }];
        let n = sys_poll(&mut fds, 2000).unwrap();
        assert_eq!(n, 1, "eventfd not readable after SIGTERM");
        sys_drain_eventfd(efd.0);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn eventfd_signals_and_drains() {
        let efd = sys_eventfd().unwrap();
        sys_signal_eventfd(efd.0).unwrap();
        sys_signal_eventfd(efd.0).unwrap();
        sys_drain_eventfd(efd.0);
        // Drained: a poll on the fd reports no readable data.
        let mut fds = [PollFd {
            fd: efd.0,
            events: POLLIN,
            revents: 0,
        }];
        let n = sys_poll(&mut fds, 0).unwrap();
        assert_eq!(n, 0, "eventfd still readable after drain");
    }
}
