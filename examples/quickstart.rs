//! Quickstart: compute 2D and 3D convex hulls with the sequential
//! (Algorithm 2) and parallel (Algorithm 3) randomized incremental
//! algorithms, and print the instrumentation the paper's theorems are
//! about.
//!
//! Run with: `cargo run --release --example quickstart`

use convex_hull_suite::core::par::{parallel_hull, ParOptions};
use convex_hull_suite::core::seq::incremental_hull_run;
use convex_hull_suite::core::{prepare_points, verify};
use convex_hull_suite::geometry::{generators, PointSet};

fn main() {
    let n = 50_000;
    println!("== 2D: {n} random points in a disk ==");
    let pts = PointSet::from_points2(&generators::disk_2d(n, 1 << 30, 42));
    // Apply a random insertion order (the "randomized" in the title).
    let pts = prepare_points(&pts, 7);

    let seq = incremental_hull_run(&pts);
    println!(
        "sequential: {} hull edges, {} facets created, {} visibility tests, dependence depth {}",
        seq.stats.hull_facets,
        seq.stats.facets_created,
        seq.stats.visibility_tests,
        seq.stats.dep_depth
    );

    let par = parallel_hull(&pts, ParOptions::default());
    println!(
        "parallel:   {} hull edges, {} facets created, {} visibility tests, recursion depth {}",
        par.stats.hull_facets,
        par.stats.facets_created,
        par.stats.visibility_tests,
        par.stats.recursion_depth
    );
    assert_eq!(seq.output.canonical(), par.output.canonical());
    assert_eq!(seq.stats.visibility_tests, par.stats.visibility_tests);
    println!("parallel output and work match the sequential run exactly.");
    println!(
        "depth / H_n = {:.2}  (Theorem 1.1: O(log n) whp)",
        seq.stats.depth_over_harmonic()
    );

    let n3 = 20_000;
    println!("\n== 3D: {n3} random points in a ball ==");
    let pts3 = PointSet::from_points3(&generators::ball_3d(n3, 1 << 30, 1));
    let pts3 = prepare_points(&pts3, 2);
    let seq3 = incremental_hull_run(&pts3);
    let par3 = parallel_hull(&pts3, ParOptions::default());
    println!(
        "sequential: {} hull facets, depth {}; parallel recursion depth {}",
        seq3.stats.hull_facets, seq3.stats.dep_depth, par3.stats.recursion_depth
    );
    assert_eq!(seq3.output.canonical(), par3.output.canonical());
    verify::verify_hull(&pts3, &par3.output).expect("hull verification");
    println!("3D hull verified (closed manifold, exact one-sidedness, Euler formula).");
}
