//! Section 6 of the paper: convex hulls with degeneracy via the **corner
//! configuration space**.
//!
//! The non-degenerate facet space breaks when four points are coplanar
//! (facets stop being simplices and defining sets stop being constant-size).
//! The paper's fix defines configurations as face-polygon *corners*
//! (six per non-collinear triple), shows the active corners are exactly the
//! hull's corners (Lemma 6.1), and that the space has 4-support
//! (Lemma 6.2), so Theorem 4.2 still yields logarithmic dependence depth.
//!
//! * [`poly_hull`] — an exact, degeneracy-tolerant polygonal-face 3D hull
//!   (the brute-force substrate);
//! * [`corner_space`] — the corner space as a
//!   [`chull_confspace::ConfigurationSpace`], with a constructive-search
//!   `support_set` that verifies Lemma 6.2 end to end (experiment E6).

pub mod corner_space;
pub mod poly_hull;

pub use corner_space::CornerSpace;
pub use poly_hull::{poly_hull, Corner, PolyFace, PolyHull};
